"""Bounded priority job queue with in-flight deduplication.

Lifecycle of a job::

    queued ──> running ──> done | failed
       └────────────────> cancelled        (only while still queued)

Submissions are deduplicated while in flight: a request whose content
signature (:meth:`repro.service.protocol.JobRequest.signature`) matches a
*queued or running* job attaches to that job instead of enqueueing new
work — N identical concurrent submissions execute once and fan the result
out to every poller.  Completed jobs leave the dedup index immediately (a
re-submission after completion is new work; the artifact cache, not the
queue, is the cross-run memoization layer).

Scheduling is highest-priority-first, FIFO within a priority.  The queue is
bounded: submissions beyond ``capacity`` *pending* jobs raise
:class:`QueueFullError` (the server answers 429).  Terminal jobs are kept
for status polling, bounded by ``history`` — the oldest terminal jobs are
forgotten first.

:class:`Dispatcher` is the single background thread that drains the queue,
handing each job to an executor callable; an executor exception marks the
job ``failed`` with the traceback in its status payload and the dispatcher
keeps draining — one poisonous request never wedges the service.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.context import correlation
from ..obs.logging import get_logger
from .protocol import JobRequest

__all__ = ["Dispatcher", "Job", "JobQueue", "JobState", "QueueFullError"]

_log = get_logger("service")


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class QueueFullError(Exception):
    """The bounded queue rejected a submission."""


@dataclass
class Job:
    """One tracked job and everything ``GET /v1/jobs/<id>`` reports."""

    id: str
    request: JobRequest
    key: str
    priority: int = 0
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Any = None
    error: str = ""
    traceback: str = ""
    #: Submissions that folded into this one while it was in flight.
    dedup_count: int = 0
    done_event: threading.Event = field(default_factory=threading.Event)

    def status_payload(self) -> Dict[str, Any]:
        """The JSON status document (result included once terminal)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "description": self.request.describe(),
            "state": self.state.value,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "dedup_count": self.dedup_count,
        }
        if self.state is JobState.FAILED:
            payload["error"] = self.error
            payload["traceback"] = self.traceback
        if self.state is JobState.DONE:
            payload["result"] = self.result
        return payload


class JobQueue:
    """Thread-safe bounded priority queue with an in-flight dedup index."""

    def __init__(self, capacity: int = 256, history: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if history < 1:
            raise ValueError("history must be positive")
        self.capacity = capacity
        self.history = history
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # signature -> job id
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = itertools.count()
        self._terminal_order: List[str] = []
        self._closed = False

    # ---------------------------------------------------------- submission --

    def submit(self, request: JobRequest) -> Tuple[Job, bool]:
        """Enqueue *request*, or attach to an identical in-flight job.

        Returns ``(job, deduped)``.  Raises :class:`QueueFullError` when the
        pending backlog is at capacity, ``RuntimeError`` once closed.
        """
        key = request.signature()
        with self._ready:
            if self._closed:
                raise RuntimeError("job queue is closed")
            existing_id = self._inflight.get(key)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.dedup_count += 1
                return job, True
            pending = sum(
                1 for job in self._jobs.values()
                if job.state is JobState.QUEUED
            )
            if pending >= self.capacity:
                raise QueueFullError(
                    f"queue is full ({self.capacity} jobs pending)"
                )
            job = Job(
                id=uuid.uuid4().hex[:12],
                request=request,
                key=key,
                priority=request.priority,
                submitted_at=time.time(),
            )
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            heapq.heappush(
                self._heap, (-job.priority, next(self._seq), job.id),
            )
            self._ready.notify()
            return job, False

    # ---------------------------------------------------------- dispatcher --

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Claim the next queued job, marking it running.

        Blocks up to *timeout* (forever when ``None``) and returns ``None``
        on timeout or once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs.get(job_id)
                    if job is None or job.state is not JobState.QUEUED:
                        continue  # cancelled (or forgotten) while queued
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    return job
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._ready.wait(remaining)

    def finish(
        self,
        job: Job,
        result: Any = None,
        error: str = "",
        tb: str = "",
    ) -> None:
        """Resolve a running job to ``done`` (no error) or ``failed``."""
        with self._ready:
            if job.state is not JobState.RUNNING:
                return
            job.state = JobState.FAILED if error else JobState.DONE
            job.result = result
            job.error = error
            job.traceback = tb
            self._retire(job)

    def resolve_queued(self, job_id: str, result: Any) -> bool:
        """Resolve a still-queued job directly to ``done`` with *result*.

        The fleet coordinator uses this for cluster-wide dedup: a request
        whose signature already has a completed result in the shared
        artifact store finishes instantly, without ever reaching a worker.
        Returns ``False`` if the job already left the queued state.
        """
        with self._ready:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return False
            job.state = JobState.DONE
            job.started_at = time.time()
            job.result = result
            self._retire(job)
            return True

    def shed_lowest_below(self, priority: int) -> Optional[Job]:
        """Cancel the lowest-priority queued job strictly below *priority*.

        Priority-aware shedding for admission control: when the queue is
        full and a higher-priority submission arrives, the least urgent
        (and, among equals, newest) pending job is sacrificed to make
        room.  Returns the shed job, or ``None`` when nothing qualifies
        (every pending job is at least as urgent as the newcomer).
        """
        with self._ready:
            victim: Optional[Job] = None
            for job in self._jobs.values():
                if job.state is not JobState.QUEUED:
                    continue
                if job.priority >= priority:
                    continue
                if (
                    victim is None
                    or job.priority < victim.priority
                    or (
                        job.priority == victim.priority
                        and job.submitted_at > victim.submitted_at
                    )
                ):
                    victim = job
            if victim is None:
                return None
            victim.state = JobState.CANCELLED
            victim.error = (
                f"shed: displaced by a priority-{priority} submission "
                f"while the queue was full"
            )
            self._retire(victim)
            return victim

    # ------------------------------------------------------------- clients --

    def cancel(self, job_id: str) -> str:
        """Cancel a *queued* job.  A cancelled job is never executed.

        Returns a truthy outcome string, or ``""`` (falsy) when the job is
        unknown, already running with no co-waiters, or already terminal —
        the service cannot interrupt a simulation in flight.

        Deduplicated jobs detach instead of cancelling: while other
        submissions are still attached to the same in-flight work
        (``dedup_count > 0``), one client's cancel releases *its* claim
        (``"detached"``) and the shared job keeps running for the rest.
        Only the last remaining claim actually cancels the job.
        """
        with self._ready:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return ""
            if job.dedup_count > 0:
                job.dedup_count -= 1
                return "detached"
            if job.state is not JobState.QUEUED:
                return ""
            job.state = JobState.CANCELLED
            self._retire(job)
            return "cancelled"

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        """Every tracked job, oldest submission first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at,
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job.done_event.wait(timeout)

    # -------------------------------------------------------------- stats --

    def depth(self) -> int:
        """Jobs waiting to run."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.state is JobState.QUEUED
            )

    def counts_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def close(self) -> None:
        """Stop accepting work and wake any blocked dispatcher."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    # ----------------------------------------------------------- internals --

    def _retire(self, job: Job) -> None:
        """Terminal bookkeeping; caller holds the lock."""
        job.finished_at = time.time()
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        job.done_event.set()
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > self.history:
            forgotten = self._terminal_order.pop(0)
            self._jobs.pop(forgotten, None)


class Dispatcher(threading.Thread):
    """The background thread that drains a :class:`JobQueue`.

    *executor* maps a :class:`JobRequest` to a JSON-compatible result
    payload; its exceptions mark the job failed (traceback preserved in the
    status payload) without stopping the drain loop.  *on_finish*, when
    given, observes every retired job — the server uses it to record
    latency metrics.
    """

    def __init__(
        self,
        queue: JobQueue,
        executor: Callable[[JobRequest], Any],
        on_finish: Optional[Callable[[Job], None]] = None,
    ) -> None:
        super().__init__(name="repro-dispatcher", daemon=True)
        self.queue = queue
        self.executor = executor
        self.on_finish = on_finish
        self._stop_requested = threading.Event()

    def run(self) -> None:
        while not self._stop_requested.is_set():
            job = self.queue.next_job(timeout=0.1)
            if job is None:
                continue
            # The job id becomes the correlation ID for everything this
            # execution touches: dispatcher log records, engine batch
            # spans, and (via pool initargs) worker-side trace events.
            with correlation(job.id):
                _log.info(
                    "job %s started: %s", job.id, job.request.describe(),
                )
                try:
                    result = self.executor(job.request)
                except Exception as exc:
                    self.queue.finish(
                        job,
                        error=f"{type(exc).__name__}: {exc}",
                        tb=traceback.format_exc(),
                    )
                    _log.warning(
                        "job %s failed: %s: %s",
                        job.id, type(exc).__name__, exc,
                    )
                else:
                    self.queue.finish(job, result=result)
                    _log.info(
                        "job %s done in %.3fs", job.id,
                        (job.finished_at or 0.0) - (job.started_at or 0.0),
                    )
            if self.on_finish is not None:
                try:
                    self.on_finish(job)
                except Exception:  # metrics must never kill the drain loop
                    pass

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_requested.set()
        self.queue.close()
        if self.is_alive():
            self.join(timeout)
