"""Experiment harness: reproduce every table and figure of the paper.

:mod:`~repro.harness.experiment` provides the :class:`Workbench`, which
caches calibrated profiles, generated traces and annotated variants so that
figure-level sweeps (dozens of core configurations) pay the expensive
memory-side simulation only once per variant.
:mod:`~repro.harness.tables` and :mod:`~repro.harness.figures` are the
drivers, one function per paper exhibit; each returns structured data and
has a matching formatter in :mod:`~repro.harness.formatting`.
"""

from .experiment import ExperimentSettings
from .figures import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .formatting import format_table, format_series
from .report import generate_report
from .sweeps import (
    SweepRecord,
    SweepSpec,
    best_point,
    coerce_axis_value,
    pareto_front,
    valid_axes,
)
from .tables import table1, table2, table3

__all__ = [
    "ExperimentSettings",
    "SweepRecord",
    "SweepSpec",
    "best_point",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "format_series",
    "format_table",
    "generate_report",
    "pareto_front",
    "coerce_axis_value",
    "table1",
    "table2",
    "table3",
    "valid_axes",
]

# The pre-v2 ``repro.harness.Workbench`` import alias was removed per the
# DESIGN.md timeline: construct one with ``repro.api.workbench()``, or
# import the class from ``repro.harness.experiment`` for extension.
