"""Experiment harness: reproduce every table and figure of the paper.

:mod:`~repro.harness.experiment` provides the :class:`Workbench`, which
caches calibrated profiles, generated traces and annotated variants so that
figure-level sweeps (dozens of core configurations) pay the expensive
memory-side simulation only once per variant.
:mod:`~repro.harness.tables` and :mod:`~repro.harness.figures` are the
drivers, one function per paper exhibit; each returns structured data and
has a matching formatter in :mod:`~repro.harness.formatting`.
"""

import warnings
from typing import Any

from .experiment import ExperimentSettings
from .figures import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .formatting import format_table, format_series
from .report import generate_report
from .sweeps import (
    SweepRecord,
    SweepSpec,
    best_point,
    coerce_axis_value,
    pareto_front,
    sweep,
    sweep_workloads,
    valid_axes,
)
from .tables import table1, table2, table3

__all__ = [
    "ExperimentSettings",
    "SweepRecord",
    "SweepSpec",
    "Workbench",
    "best_point",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "format_series",
    "format_table",
    "generate_report",
    "pareto_front",
    "coerce_axis_value",
    "sweep",
    "sweep_workloads",
    "table1",
    "table2",
    "table3",
    "valid_axes",
]


def __getattr__(name: str) -> Any:
    # ``Workbench`` stays importable here, but the facade is the supported
    # entry point now; repro-internal code imports it from
    # ``repro.harness.experiment`` and never pays this warning.
    if name == "Workbench":
        warnings.warn(
            "importing Workbench from repro.harness is deprecated as an "
            "entry point; construct one with repro.api.workbench() "
            "(removal timeline in DESIGN.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .experiment import Workbench

        return Workbench
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
