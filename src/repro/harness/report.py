"""Markdown report generation: paper-vs-measured for every exhibit.

``generate_report`` runs any subset of the paper's tables and figures on a
workbench and renders a self-contained markdown document.  The repository's
``EXPERIMENTS.md`` is produced by this module (see the header it emits), so
the recorded numbers can always be regenerated::

    python -m repro.harness.report --measure 120000 > EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence

from ..core.cpi import PAPER_CPI_ON_CHIP
from ..core.epoch import TerminationCondition
from .experiment import ExperimentSettings, Workbench
from .figures import (
    ALL_WORKLOADS,
    SMAC_ENTRY_SWEEP,
    SMAC_SCALE,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    smac_scaled_profile,
)
from .tables import PAPER_TABLE1, PAPER_TABLE2, table1, table2, table3

ALL_SECTIONS = (
    "table1", "table2", "table3",
    "figure2", "figure3", "figure4",
    "figure5", "figure6", "figure7", "figure8",
)


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def _section_table1(bench: Workbench) -> str:
    rows = table1(bench, ALL_WORKLOADS)
    body = _md_table(
        ["per 100 insts", *(r.workload for r in rows)],
        [
            ["store frequency (measured)", *(r.store_frequency for r in rows)],
            ["L2 store miss (measured)", *(r.store_miss_per_100 for r in rows)],
            ["L2 store miss (paper)",
             *(PAPER_TABLE1[r.workload]["store"] for r in rows)],
            ["L2 load miss (measured)", *(r.load_miss_per_100 for r in rows)],
            ["L2 load miss (paper)",
             *(PAPER_TABLE1[r.workload]["load"] for r in rows)],
            ["L2 inst miss (measured)", *(r.inst_miss_per_100 for r in rows)],
            ["L2 inst miss (paper)",
             *(PAPER_TABLE1[r.workload]["inst"] for r in rows)],
        ],
    )
    return "## Table 1 — store and miss rate statistics\n\n" + body


def _section_table2(bench: Workbench) -> str:
    measured = table2(bench, ALL_WORKLOADS)
    body = _md_table(
        ["fully overlapped stores", *measured.keys()],
        [
            ["measured", *measured.values()],
            ["paper", *(PAPER_TABLE2[w] for w in measured)],
        ],
    )
    return "## Table 2 — missing stores fully overlapped with computation\n\n" + body


def _section_table3(bench: Workbench) -> str:
    measured = table3(bench, ALL_WORKLOADS)
    body = _md_table(
        ["CPI on-chip", *measured.keys()],
        [
            ["estimated", *measured.values()],
            ["paper", *(PAPER_CPI_ON_CHIP[w] for w in measured)],
        ],
    )
    return "## Table 3 — CPI_on-chip (default configuration)\n\n" + body


def _section_figure2(bench: Workbench) -> str:
    results = figure2(bench, ALL_WORKLOADS)
    parts = ["## Figure 2 — store prefetching, SB and SQ sizing (EPI/1000)"]
    for workload, series in results.items():
        rows = []
        for mode in ("Sp0", "Sp1", "Sp2"):
            for sb in (8, 16, 32):
                row: List[object] = [f"{mode}/sb{sb}"]
                for sq in (16, 32, 64, 256):
                    row.append(series[f"{mode}/sb{sb}/sq{sq}"])
                rows.append(row)
        rows.append(["perfect stores", series["perfect"], "", "", ""])
        parts.append(f"### {workload}\n\n" + _md_table(
            ["config", "sq16", "sq32", "sq64", "sq256"], rows,
        ))
    return "\n\n".join(parts)


def _section_figure3(bench: Workbench) -> str:
    parts = ["## Figure 3 — window termination conditions "
             "(fraction of epochs, store MLP >= 1)"]
    for label, sle in (("A: default", False), ("B: SLE + prefetch past", True)):
        results = figure3(bench, ALL_WORKLOADS, sle=sle)
        conditions = [c for c in TerminationCondition
                      if c is not TerminationCondition.END_OF_TRACE]
        rows = []
        for condition in conditions:
            row: List[object] = [condition.value]
            for workload in ALL_WORKLOADS:
                row.append(results[workload].get(condition, 0.0))
            rows.append(row)
        parts.append(f"### {label}\n\n" + _md_table(
            ["condition", *ALL_WORKLOADS], rows,
        ))
    return "\n\n".join(parts)


def _section_figure4(bench: Workbench) -> str:
    results = figure4(bench, ALL_WORKLOADS)
    parts = ["## Figure 4 — MLP distributions "
             "(fraction of epochs; rows: store MLP, columns: load+inst MLP)"]
    for workload, cells in results.items():
        store_values = sorted({s for (s, _), f in cells.items() if s >= 1})
        rows = []
        for store_mlp in store_values:
            row: List[object] = [store_mlp]
            for load_mlp in range(6):
                row.append(cells.get((store_mlp, load_mlp), 0.0))
            rows.append(row)
        parts.append(f"### {workload}\n\n" + _md_table(
            ["store MLP", *(f"li{col}" for col in range(6))], rows,
        ))
    return "\n\n".join(parts)


def _smac_bench(bench: Workbench) -> Workbench:
    smac = Workbench(ExperimentSettings(
        warmup=max(bench.settings.warmup, 60_000),
        measure=max(bench.settings.measure, 90_000),
        seed=bench.settings.seed,
        calibrate=False,
    ))
    for name in ALL_WORKLOADS:
        smac.set_profile(name, smac_scaled_profile(name))
    return smac


def _section_figure5(bench: Workbench) -> str:
    smac = _smac_bench(bench)
    results = figure5(smac, ALL_WORKLOADS)
    parts = [
        "## Figure 5 — Store Miss Accelerator (EPI/1000)\n\n"
        f"SMAC entries scaled 1:{SMAC_SCALE} from the paper's 8K-128K; "
        "see DESIGN.md for the scaling argument."
    ]
    for workload, series in results.items():
        rows = []
        for mode in ("Sp0", "Sp1", "Sp2"):
            row: List[object] = [mode, series[f"{mode}/none"]]
            for entries in SMAC_ENTRY_SWEEP:
                row.append(series[f"{mode}/smac{entries}"])
            row.append(series[f"{mode}/perfect"])
            rows.append(row)
        headers = ["mode", "no SMAC",
                   *(f"{e} ({e * SMAC_SCALE // 1024}K)" for e in SMAC_ENTRY_SWEEP),
                   "perfect"]
        parts.append(f"### {workload}\n\n" + _md_table(headers, rows))
    return "\n\n".join(parts)


def _section_figure6(bench: Workbench) -> str:
    smac = _smac_bench(bench)
    results = figure6(smac, ALL_WORKLOADS)
    parts = ["## Figure 6 — coherence impact on the SMAC"]
    for metric, title in (
        ("invalidates_per_1000", "SMAC coherence invalidates per 1000 insts"),
        ("invalid_hit_percent", "% of missing stores hitting invalidated entries"),
    ):
        rows = []
        for workload in ALL_WORKLOADS:
            for nodes in (2, 4):
                row: List[object] = [f"{workload}/{nodes}-node"]
                for entries in SMAC_ENTRY_SWEEP:
                    row.append(results[workload][metric][nodes][entries])
                rows.append(row)
        parts.append(f"### {title}\n\n" + _md_table(
            ["workload/nodes", *(str(e) for e in SMAC_ENTRY_SWEEP)], rows,
        ))
    return "\n\n".join(parts)


def _section_figure7(bench: Workbench) -> str:
    results = figure7(bench, ALL_WORKLOADS)
    parts = ["## Figure 7 — consistency model optimizations (EPI/1000, Sp1)"]
    rows = []
    for workload in ALL_WORKLOADS:
        series = results[workload]
        for label in ("PC1", "PC2", "PC3", "WC1", "WC2", "WC3"):
            pair = series[f"Sp1/{label}"]
            rows.append([
                f"{workload}/{label}", pair["with_stores"], pair["perfect"],
            ])
    parts.append(_md_table(
        ["configuration", "with stores", "perfect stores"], rows,
    ))
    return "\n\n".join(parts)


def _section_figure8(bench: Workbench) -> str:
    results = figure8(bench, ALL_WORKLOADS)
    parts = ["## Figure 8 — Hardware Scout (EPI/1000)"]
    rows = []
    for workload in ALL_WORKLOADS:
        series = results[workload]
        for key in ("PC/NoHWS", "PC/HWS0", "PC/HWS1", "PC/HWS2",
                    "WC/NoHWS", "WC/HWS0", "WC/HWS1", "WC/HWS2"):
            pair = series[key]
            rows.append([
                f"{workload}/{key}", pair["with_stores"], pair["perfect"],
            ])
    parts.append(_md_table(
        ["configuration", "with stores", "perfect stores"], rows,
    ))
    return "\n\n".join(parts)


_SECTIONS: Dict[str, Callable[[Workbench], str]] = {
    "table1": _section_table1,
    "table2": _section_table2,
    "table3": _section_table3,
    "figure2": _section_figure2,
    "figure3": _section_figure3,
    "figure4": _section_figure4,
    "figure5": _section_figure5,
    "figure6": _section_figure6,
    "figure7": _section_figure7,
    "figure8": _section_figure8,
}


def generate_report(
    bench: Workbench,
    sections: Sequence[str] = ALL_SECTIONS,
) -> str:
    """Render the paper-vs-measured report for the requested sections."""
    unknown = set(sections) - set(_SECTIONS)
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")
    settings = bench.settings
    header = (
        "# Experiments — paper vs. measured\n\n"
        "Reproduction of *Store Memory-Level Parallelism Optimizations for "
        "Commercial Applications* (MICRO 2005).\n\n"
        f"Generated by `repro.harness.report` with "
        f"measure={settings.measure}, warmup={settings.warmup}, "
        f"seed={settings.seed}, calibrate={settings.calibrate}. "
        "Absolute EPI values depend on the synthetic trace substitution "
        "(see DESIGN.md); the comparisons target shape: orderings, rough "
        "factors and crossovers.\n"
    )
    body = [header]
    for name in sections:
        body.append(_SECTIONS[name](bench))
    return "\n\n".join(body) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate the paper-vs-measured markdown report",
    )
    parser.add_argument("--measure", type=int, default=120_000)
    parser.add_argument("--warmup", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sections", nargs="*", default=list(ALL_SECTIONS))
    args = parser.parse_args(argv)
    bench = Workbench(ExperimentSettings(
        warmup=args.warmup, measure=args.measure, seed=args.seed,
    ))
    sys.stdout.write(generate_report(bench, args.sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
