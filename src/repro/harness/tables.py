"""Reproduction of the paper's Tables 1-3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.cpi import PAPER_CPI_ON_CHIP
from ..trace import collect_statistics
from .experiment import Workbench
from .formatting import format_table

#: Paper Table 1 (for side-by-side comparison in benches/EXPERIMENTS.md).
PAPER_TABLE1 = {
    "database": {"store_freq": 10.09, "store": 0.36, "load": 0.57, "inst": 0.09},
    "tpcw": {"store_freq": 7.28, "store": 0.12, "load": 0.06, "inst": 0.06},
    "specjbb": {"store_freq": 7.52, "store": 0.07, "load": 0.25, "inst": 0.00},
    "specweb": {"store_freq": 7.20, "store": 0.13, "load": 0.14, "inst": 0.01},
}

#: Paper Table 2: fraction of missing stores fully overlapped with computation.
PAPER_TABLE2 = {
    "database": 0.09,
    "tpcw": 0.12,
    "specjbb": 0.06,
    "specweb": 0.22,
}

#: Paper Table 3 is PAPER_CPI_ON_CHIP in :mod:`repro.core.cpi`.

# On-chip CPI estimator coefficients (documented model, Section "Table 3"
# of EXPERIMENTS.md): a superscalar base CPI plus branch-misprediction and
# on-chip cache-hit stall components.
_BASE_CPI = 0.70
_MISPREDICT_PENALTY = 12.0
_L1_MISS_L2_HIT_STALL = 2.0


@dataclass(frozen=True)
class Table1Row:
    workload: str
    store_frequency: float
    store_miss_per_100: float
    load_miss_per_100: float
    inst_miss_per_100: float


def table1(
    bench: Workbench, workloads: Sequence[str] = ("database", "tpcw", "specjbb", "specweb")
) -> List[Table1Row]:
    """Store and miss-rate statistics (2MB 4-way 64B-line L2)."""
    rows = []
    for name in workloads:
        annotated = bench.annotated(name)
        stats = bench.memory_for(name).stats
        mix = collect_statistics(inst for inst, _ in annotated).mix
        rows.append(Table1Row(
            workload=name,
            store_frequency=mix.store_frequency,
            store_miss_per_100=stats.store_miss_rate,
            load_miss_per_100=stats.load_miss_rate,
            inst_miss_per_100=stats.inst_miss_rate,
        ))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    return format_table(
        ["per 100 insts", *(r.workload for r in rows)],
        [
            ["store frequency", *(r.store_frequency for r in rows)],
            ["L2 store miss rate", *(r.store_miss_per_100 for r in rows)],
            ["L2 load miss rate", *(r.load_miss_per_100 for r in rows)],
            ["L2 inst miss rate", *(r.inst_miss_per_100 for r in rows)],
            ["paper store miss", *(PAPER_TABLE1[r.workload]["store"] for r in rows)],
            ["paper load miss", *(PAPER_TABLE1[r.workload]["load"] for r in rows)],
            ["paper inst miss", *(PAPER_TABLE1[r.workload]["inst"] for r in rows)],
        ],
        title="Table 1: store and miss rate statistics (2MB 4-way L2, 64B lines)",
    )


def table2(
    bench: Workbench, workloads: Sequence[str] = ("database", "tpcw", "specjbb", "specweb")
) -> Dict[str, float]:
    """Fraction of missing stores fully overlapped with computation."""
    out: Dict[str, float] = {}
    for name in workloads:
        result = bench.run(name)
        out[name] = result.store_overlap_fraction
    return out


def format_table2(measured: Dict[str, float]) -> str:
    rows = [
        ["measured", *(measured[w] for w in measured)],
        ["paper", *(PAPER_TABLE2[w] for w in measured)],
    ]
    return format_table(
        ["fully overlapped", *measured.keys()],
        rows,
        title="Table 2: fraction of missing stores fully overlapped with computation",
    )


def table3(
    bench: Workbench, workloads: Sequence[str] = ("database", "tpcw", "specjbb", "specweb")
) -> Dict[str, float]:
    """Estimated CPI_on-chip per workload.

    The epoch model takes CPI_on-chip as an input (the paper measured it on
    a cycle simulator with a perfect L2).  We *estimate* it from trace
    properties with a documented linear model: a superscalar base CPI plus
    branch-misprediction and L1-miss/L2-hit stall components, then compare
    against the paper's Table 3.
    """
    out: Dict[str, float] = {}
    for name in workloads:
        annotated = bench.annotated(name)
        memory = bench.memory_for(name)
        instructions = max(1, len(annotated))
        mispredicts = sum(1 for _, info in annotated if info.mispredicted)
        l1d = memory.l1d.stats
        l1_miss_l2_hit = max(
            0, l1d.read_misses - memory.stats.load_l2_misses
        ) / instructions
        out[name] = (
            _BASE_CPI
            + _MISPREDICT_PENALTY * mispredicts / instructions
            + _L1_MISS_L2_HIT_STALL * l1_miss_l2_hit
        )
    return out


def format_table3(measured: Dict[str, float]) -> str:
    rows = [
        ["estimated", *(measured[w] for w in measured)],
        ["paper", *(PAPER_CPI_ON_CHIP[w] for w in measured)],
    ]
    return format_table(
        ["CPI on-chip", *measured.keys()],
        rows,
        title="Table 3: CPI_on-chip for the default processor configuration",
    )
