"""Reproduction of the paper's Figures 2-8.

Each ``figureN`` function returns plain data structures (dicts keyed the way
the paper's graphs are) so that benches can both print the series and assert
the paper's qualitative claims.  The SMAC experiments (Figures 5 and 6) run
on a scaled memory geometry — see :func:`smac_scaled_profile` — because the
paper warmed its SMAC for one billion instructions, far beyond pure-Python
reach; scaling preserves the ratios between workload footprints and SMAC
capacities, hence the figures' shapes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..config import (
    CacheConfig,
    MemoryConfig,
    ScoutMode,
    SmacConfig,
    StorePrefetchMode,
)
from ..core.epoch import TerminationCondition
from ..workloads import WORKLOADS, WorkloadProfile
from .experiment import SharingSettings, Workbench

ALL_WORKLOADS: Tuple[str, ...] = ("database", "tpcw", "specjbb", "specweb")

_PREFETCH_LABELS = {
    StorePrefetchMode.NONE: "Sp0",
    StorePrefetchMode.AT_RETIRE: "Sp1",
    StorePrefetchMode.AT_EXECUTE: "Sp2",
}

# ---------------------------------------------------------------------------
# Figure 2: store prefetching x store buffer size x store queue size
# ---------------------------------------------------------------------------

FIG2_STORE_BUFFERS = (8, 16, 32)
FIG2_STORE_QUEUES = (16, 32, 64, 256)


def figure2(
    bench: Workbench, workloads: Sequence[str] = ALL_WORKLOADS
) -> Dict[str, Dict[str, float]]:
    """EPI/1000 for every (prefetch, SB, SQ) point plus the perfect-store
    floor, per workload.  Keys: ``"Sp1/sb16/sq32"`` and ``"perfect"``."""
    results: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        series: Dict[str, float] = {}
        for mode in StorePrefetchMode:
            for sb in FIG2_STORE_BUFFERS:
                for sq in FIG2_STORE_QUEUES:
                    result = bench.run(
                        name,
                        store_prefetch=mode,
                        store_buffer=sb,
                        store_queue=sq,
                    )
                    key = f"{_PREFETCH_LABELS[mode]}/sb{sb}/sq{sq}"
                    series[key] = result.epi_per_1000
        series["perfect"] = bench.run(name, perfect_stores=True).epi_per_1000
        results[name] = series
    return results


# ---------------------------------------------------------------------------
# Figure 3: window termination conditions
# ---------------------------------------------------------------------------

def figure3(
    bench: Workbench,
    workloads: Sequence[str] = ALL_WORKLOADS,
    sle: bool = False,
) -> Dict[str, Dict[TerminationCondition, float]]:
    """Termination-condition mix over epochs with store MLP >= 1.

    ``sle=False`` reproduces Figure 3A (default configuration);
    ``sle=True`` reproduces Figure 3B (SLE + prefetch past serializing).
    """
    results: Dict[str, Dict[TerminationCondition, float]] = {}
    variant = "pc_sle" if sle else "pc"
    for name in workloads:
        result = bench.run(
            name,
            variant=variant,
            prefetch_past_serializing=sle,
        )
        results[name] = result.termination_fractions(store_mlp_at_least=1)
    return results


# ---------------------------------------------------------------------------
# Figure 4: MLP distributions
# ---------------------------------------------------------------------------

def figure4(
    bench: Workbench, workloads: Sequence[str] = ALL_WORKLOADS
) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Joint (store MLP, load+inst MLP) epoch fractions, buckets capped at
    the paper's >=10 / >=5."""
    results = {}
    for name in workloads:
        result = bench.run(name)
        results[name] = result.mlp_distribution().bucketed(
            store_cap=10, load_cap=5
        )
    return results


# ---------------------------------------------------------------------------
# Figures 5 & 6: the Store Miss Accelerator
# ---------------------------------------------------------------------------

#: SMAC entry counts swept, scaled 1:256 from the paper's 8K..128K.
SMAC_ENTRY_SWEEP = (32, 64, 128, 256, 512)
SMAC_SCALE = 256

#: Scaled private store-miss footprints (2KB regions per workload),
#: preserving the paper's saturation ordering: database (64K entries)
#: > SPECjbb/TPC-W (32K) > SPECweb (16K).  Small enough that the trace's
#: store-miss budget revisits each region several times (the paper warmed
#: its SMAC over 1G instructions to the same end).
_SMAC_REGIONS = {
    "database": 256,
    "tpcw": 128,
    "specjbb": 128,
    "specweb": 64,
}


def smac_scaled_profile(name: str) -> WorkloadProfile:
    """Workload profile rescaled for the SMAC capacity experiments."""
    profile = WORKLOADS[name]
    return profile.with_(
        store_regions=_SMAC_REGIONS[name],
        store_region_lines_used=1,
        hot_data_bytes=16 * 1024,
        hot_code_bytes=8 * 1024,
        cold_load_bytes=8 * 1024 * 1024,
        shared_bytes=256 * 1024,
    )


def smac_memory_config(entries: int | None) -> MemoryConfig:
    """Scaled memory-side configuration for the SMAC experiments."""
    smac = None
    if entries is not None:
        smac = SmacConfig(entries=entries, associativity=8)
    return MemoryConfig(
        l2=CacheConfig(64 * 1024, 4),
        smac=smac,
    )


def _install_smac_profiles(bench: Workbench, workloads: Sequence[str]) -> None:
    for name in workloads:
        bench.set_profile(name, smac_scaled_profile(name))


def figure5(
    bench: Workbench,
    workloads: Sequence[str] = ALL_WORKLOADS,
    entry_sweep: Sequence[int] = SMAC_ENTRY_SWEEP,
) -> Dict[str, Dict[str, float]]:
    """EPI/1000 per (prefetch mode, SMAC size), plus no-SMAC and perfect.

    Keys: ``"Sp1/none"``, ``"Sp1/smac256"``, ..., ``"Sp1/perfect"``.
    Mutates the bench's profiles to the scaled SMAC variants.
    """
    _install_smac_profiles(bench, workloads)
    results: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        series: Dict[str, float] = {}
        for mode in StorePrefetchMode:
            label = _PREFETCH_LABELS[mode]
            series[f"{label}/none"] = bench.run(
                name,
                memory_config=smac_memory_config(None),
                tag="smac-none",
                store_prefetch=mode,
            ).epi_per_1000
            for entries in entry_sweep:
                series[f"{label}/smac{entries}"] = bench.run(
                    name,
                    memory_config=smac_memory_config(entries),
                    tag=f"smac-{entries}",
                    store_prefetch=mode,
                ).epi_per_1000
            series[f"{label}/perfect"] = bench.run(
                name,
                memory_config=smac_memory_config(None),
                tag="smac-none",
                store_prefetch=mode,
                perfect_stores=True,
            ).epi_per_1000
        results[name] = series
    return results


def figure6(
    bench: Workbench,
    workloads: Sequence[str] = ALL_WORKLOADS,
    entry_sweep: Sequence[int] = SMAC_ENTRY_SWEEP,
    node_counts: Sequence[int] = (2, 4),
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Impact of coherence on the SMAC.

    Returns per workload::

        {"invalidates_per_1000": {nodes: {entries: value}},
         "invalid_hit_percent":  {nodes: {entries: value}}}
    """
    _install_smac_profiles(bench, workloads)
    results: Dict[str, Dict[str, Dict[int, Dict[int, float]]]] = {}
    for name in workloads:
        invalidates: Dict[int, Dict[int, float]] = {}
        invalid_hits: Dict[int, Dict[int, float]] = {}
        for nodes in node_counts:
            sharing = SharingSettings(nodes=nodes)
            invalidates[nodes] = {}
            invalid_hits[nodes] = {}
            for entries in entry_sweep:
                bench.run(
                    name,
                    memory_config=smac_memory_config(entries),
                    sharing=sharing,
                    tag=f"smac-{entries}",
                )
                memory = bench.memory_for(
                    name, sharing=sharing, tag=f"smac-{entries}"
                )
                stats = memory.stats
                instructions = max(1, stats.instructions)
                invalidates[nodes][entries] = (
                    1000.0 * stats.smac_coherence_invalidates / instructions
                )
                store_misses = max(1, stats.store_l2_misses)
                invalid_hits[nodes][entries] = (
                    100.0 * stats.smac_invalidated_hits / store_misses
                )
        results[name] = {
            "invalidates_per_1000": invalidates,
            "invalid_hit_percent": invalid_hits,
        }
    return results


# ---------------------------------------------------------------------------
# Figure 7: memory consistency model optimizations
# ---------------------------------------------------------------------------

#: The six configurations of Figure 7, as (label, trace variant, core knobs).
FIG7_CONFIGS: Tuple[Tuple[str, str, dict], ...] = (
    ("PC1", "pc", {}),
    ("PC2", "pc", {"prefetch_past_serializing": True}),
    ("PC3", "pc_sle", {"prefetch_past_serializing": True}),
    ("WC1", "wc", {}),
    ("WC2", "wc", {"prefetch_past_serializing": True}),
    ("WC3", "wc_sle", {"prefetch_past_serializing": True}),
)


def figure7(
    bench: Workbench, workloads: Sequence[str] = ALL_WORKLOADS
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """EPI/1000 with stores and with perfect stores for PC1-3/WC1-3 under
    each store-prefetch mode.

    Keys: ``results[workload][f"{Sp}/{config}"] = {"with_stores": x,
    "perfect": y}``.
    """
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        series: Dict[str, Dict[str, float]] = {}
        for mode in StorePrefetchMode:
            for label, variant, knobs in FIG7_CONFIGS:
                with_stores = bench.run(
                    name, variant=variant, store_prefetch=mode, **knobs
                ).epi_per_1000
                perfect = bench.run(
                    name,
                    variant=variant,
                    store_prefetch=mode,
                    perfect_stores=True,
                    **knobs,
                ).epi_per_1000
                series[f"{_PREFETCH_LABELS[mode]}/{label}"] = {
                    "with_stores": with_stores,
                    "perfect": perfect,
                }
        results[name] = series
    return results


# ---------------------------------------------------------------------------
# Figure 8: Hardware Scout
# ---------------------------------------------------------------------------

#: The Figure 8 configurations per consistency model.
FIG8_CONFIGS: Tuple[Tuple[str, ScoutMode], ...] = (
    ("NoHWS", ScoutMode.NONE),
    ("HWS0", ScoutMode.HWS0),
    ("HWS1", ScoutMode.HWS1),
    ("HWS2", ScoutMode.HWS2),
)


def figure8(
    bench: Workbench, workloads: Sequence[str] = ALL_WORKLOADS
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """EPI/1000 (with stores / perfect stores) for No-HWS and HWS0-2 under
    PC and WC."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        series: Dict[str, Dict[str, float]] = {}
        for model_label, variant in (("PC", "pc"), ("WC", "wc")):
            for label, scout in FIG8_CONFIGS:
                with_stores = bench.run(
                    name, variant=variant, scout=scout
                ).epi_per_1000
                perfect = bench.run(
                    name, variant=variant, scout=scout, perfect_stores=True
                ).epi_per_1000
                series[f"{model_label}/{label}"] = {
                    "with_stores": with_stores,
                    "perfect": perfect,
                }
        results[name] = series
    return results
