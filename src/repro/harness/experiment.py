"""The Workbench: cached end-to-end experiment plumbing.

.. deprecated:: entry point
   Constructing a :class:`Workbench` directly still works, but new code
   should go through :mod:`repro.api` (``api.run`` / ``api.workbench``),
   which fronts this module, the parallel engine and the service client
   with one surface.

Pipeline per (workload, variant):

1. calibrate the profile against Table 1 (cached per workload),
2. generate the instruction trace (cached),
3. apply trace transformations — WC lock rewriting and/or SLE (cached),
4. annotate through the memory hierarchy, branch predictor and sharing
   model (cached per memory-side configuration),
5. run MLPsim for each core configuration (cheap; not cached).

Figure sweeps re-run step 5 dozens of times against one cached annotation,
mirroring the paper's methodology where cache behaviour is independent of
the core parameters being swept.

Caching is delegated to :class:`repro.engine.cache.ArtifactCache`: every
artifact is keyed by a content hash of the inputs that produced it (profile
+ settings + variant + memory configuration), held in an in-memory LRU and
— unless disabled with ``cache_dir=None`` — written through to a persistent
cache directory shared between processes and invocations.  That is what
lets :class:`repro.engine.runner.EngineRunner` worker processes reuse one
calibration/generation/annotation across a whole parallel sweep, and what
makes the second invocation of a figure sweep start warm.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import (
    ConsistencyModel,
    MemoryConfig,
    SimulationConfig,
    SystemConfig,
)
from ..core import SimulationResult
from ..core.backend import resolve_backend
from ..core.cpi import PAPER_CPI_ON_CHIP
from ..core.window import WindowObserver
from ..engine import serialize
from ..engine.cache import ArtifactCache, content_key, resolve_cache_dir
from ..frontend import BranchPredictor
from ..isa import Instruction
from ..locks import apply_sle, apply_transactional_memory, rewrite_pc_to_wc
from ..memory import AnnotatedTrace, MemorySystem, annotate_trace
from ..multiproc import MultiChipSystem, SharingModel
from ..workloads import WORKLOADS, WorkloadProfile, calibrate_profile
from ..workloads.generator import WorkloadGenerator


@dataclass(frozen=True)
class ExperimentSettings:
    """Trace sizing and seeding shared by all experiments."""

    warmup: int = 40_000
    measure: int = 120_000
    seed: int = 7
    calibrate: bool = True

    @property
    def total(self) -> int:
        return self.warmup + self.measure


@dataclass(frozen=True)
class SharingSettings:
    """Remote-traffic model parameters for multi-chip experiments."""

    nodes: int = 2
    write_rate_per_1000: float = 1.2
    read_rate_per_1000: float = 0.4


class Workbench:
    """Caches every expensive stage of the experiment pipeline.

    *cache_dir* follows :func:`repro.engine.cache.resolve_cache_dir`:
    ``"auto"`` (the default) persists artifacts under ``$REPRO_CACHE_DIR``
    or ``.repro-cache``; ``None`` keeps the cache in-memory only; any other
    value is used as the cache directory.  Pass an existing *artifacts*
    cache to share one between workbenches.
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        cache_dir: object = "auto",
        artifacts: ArtifactCache | None = None,
        memory_entries: int = 128,
    ) -> None:
        self.settings = settings or ExperimentSettings()
        self.artifacts = artifacts if artifacts is not None else ArtifactCache(
            resolve_cache_dir(cache_dir), memory_entries=memory_entries,
        )
        self._profiles: Dict[str, WorkloadProfile] = {}
        self._memories: Dict[tuple, MemorySystem] = {}

    # -- profiles / traces ----------------------------------------------------

    def profile(self, workload: str) -> WorkloadProfile:
        """The (calibrated) profile for *workload*."""
        if workload not in self._profiles:
            base = WORKLOADS[workload]
            if self.settings.calibrate:
                instructions = min(150_000, self.settings.total)
                warmup = min(50_000, self.settings.warmup + 10_000)
                key = content_key(
                    "profile", base, instructions, warmup, self.settings.seed,
                )
                base = self.artifacts.get_or_create(
                    "profile", key,
                    lambda: calibrate_profile(
                        base,
                        instructions=instructions,
                        warmup=warmup,
                        seed=self.settings.seed,
                    ),
                )
            self._profiles[workload] = base
        return self._profiles[workload]

    def set_profile(self, workload: str, profile: WorkloadProfile) -> None:
        """Install a custom profile (e.g. the scaled SMAC variant).

        Content addressing makes downstream artifacts self-invalidating —
        the new profile hashes to new trace/annotation keys — so only the
        memory-system lookaside (which is keyed by name for
        :meth:`memory_for`) needs explicit dropping.
        """
        self._profiles[workload] = profile
        self._memories = {
            key: value for key, value in self._memories.items()
            if key[0] != workload
        }

    def trace(self, workload: str, variant: str = "pc") -> List[Instruction]:
        """The instruction trace for a workload under a lock-idiom variant.

        Variants: ``pc`` (native TSO), ``wc`` (lock idioms rewritten to
        lwarx/stwcx/isync + lwsync), ``pc_sle``/``wc_sle`` (locks elided),
        ``pc_tm``/``wc_tm`` (critical sections run as transactions).
        """
        profile = self.profile(workload)
        key = content_key(
            "trace", profile, self.settings.total, self.settings.seed, variant,
        )
        return self.artifacts.get_or_create(
            "trace", key, lambda: self._build_trace(workload, profile, variant),
        )

    def _build_trace(
        self, workload: str, profile: WorkloadProfile, variant: str
    ) -> List[Instruction]:
        if variant == "pc":
            generator = WorkloadGenerator(profile, seed=self.settings.seed)
            return generator.generate(self.settings.total)
        base = self.trace(workload, "pc")
        if variant == "wc":
            return rewrite_pc_to_wc(base)
        if variant == "pc_sle":
            return apply_sle(base)
        if variant == "wc_sle":
            return apply_sle(rewrite_pc_to_wc(base))
        if variant == "pc_tm":
            return apply_transactional_memory(base)
        if variant == "wc_tm":
            return apply_transactional_memory(rewrite_pc_to_wc(base))
        raise ValueError(f"unknown trace variant {variant!r}")

    # -- annotation ------------------------------------------------------------

    def annotated(
        self,
        workload: str,
        variant: str = "pc",
        memory_config: MemoryConfig | None = None,
        sharing: SharingSettings | None = None,
        tag: str = "",
    ) -> AnnotatedTrace:
        """Miss-classified measurement window for a workload variant.

        The cache key hashes the profile, trace sizing, variant, memory
        configuration and sharing model, so different SMAC geometries never
        collide; *tag* remains a human-readable discriminator used by
        :meth:`memory_for`.
        """
        config = memory_config or MemoryConfig()
        profile = self.profile(workload)
        predictor_config = SimulationConfig().core.branch
        key = content_key(
            "annotation", profile, self.settings.total, self.settings.warmup,
            self.settings.seed, variant, config, sharing, tag,
            predictor_config,
        )
        annotated, memory = self.artifacts.get_or_create(
            "annotation", key,
            lambda: self._build_annotation(
                workload, variant, config, sharing, profile,
            ),
        )
        # memory_for looks up by name (tags carry the human-readable
        # discrimination there); repopulated even on a persistent hit.
        self._memories[(workload, variant, tag, sharing)] = memory
        return annotated

    def _build_annotation(
        self,
        workload: str,
        variant: str,
        config: MemoryConfig,
        sharing: SharingSettings | None,
        profile: WorkloadProfile,
    ) -> tuple:
        system = None
        nodes = sharing.nodes if sharing is not None else 2
        memory = MemorySystem(config, single_chip=(nodes == 1))
        if sharing is not None and sharing.nodes > 1:
            generator = WorkloadGenerator(profile, seed=self.settings.seed)
            shared_region = generator.space["shared"]
            model = SharingModel(
                shared_base=shared_region.base,
                shared_bytes=shared_region.size,
                write_rate_per_1000=sharing.write_rate_per_1000,
                read_rate_per_1000=sharing.read_rate_per_1000,
                remote_nodes=sharing.nodes - 1,
                seed=self.settings.seed + 1,
            )
            system = MultiChipSystem(
                config, SystemConfig(nodes=sharing.nodes), sharing=model
            )
            memory = system.memory
        predictor = BranchPredictor(SimulationConfig().core.branch)
        annotated = annotate_trace(
            self.trace(workload, variant),
            memory,
            predictor=predictor,
            system=system,
            warmup=self.settings.warmup,
        )
        return annotated, memory

    def memory_for(
        self,
        workload: str,
        variant: str = "pc",
        sharing: SharingSettings | None = None,
        tag: str = "",
    ) -> MemorySystem:
        """The memory system that produced an annotation (for its counters)."""
        key = (workload, variant, tag, sharing)
        if key not in self._memories:
            raise KeyError(
                f"annotate {key} first via Workbench.annotated(...)"
            )
        return self._memories[key]

    # -- simulation ---------------------------------------------------------------

    def simulation_config(self, workload: str, **core_changes) -> SimulationConfig:
        """Default simulation config with the workload's Table 3 CPI."""
        config = dataclasses.replace(
            SimulationConfig(),
            cpi_on_chip=PAPER_CPI_ON_CHIP.get(workload, 1.0),
            warmup_instructions=self.settings.warmup,
            measure_instructions=self.settings.measure,
        )
        if core_changes:
            config = config.with_core(**core_changes)
        return config

    def resolved_config(
        self,
        workload: str,
        variant: str = "pc",
        config: Optional[SimulationConfig] = None,
        **core_changes,
    ) -> SimulationConfig:
        """The effective simulation config for one (workload, variant) run.

        Applies the same resolution :meth:`run` uses — workload defaults,
        explicit overrides, and the forced WC consistency model for ``wc*``
        variants — so callers that need the config *without* running (shard
        planning, checkpoint keys) agree exactly with the simulation path.
        """
        if config is None:
            config = self.simulation_config(workload, **core_changes)
        elif core_changes:
            config = config.with_core(**core_changes)
        if variant.startswith("wc") and (
            config.core.consistency is not ConsistencyModel.WC
        ):
            config = config.with_core(consistency=ConsistencyModel.WC)
        return config

    def run(
        self,
        workload: str,
        variant: str = "pc",
        memory_config: MemoryConfig | None = None,
        sharing: SharingSettings | None = None,
        tag: str = "",
        config: Optional[SimulationConfig] = None,
        observer: Optional[WindowObserver] = None,
        backend: Optional[str] = None,
        **core_changes,
    ) -> SimulationResult:
        """Annotate (cached) and simulate one configuration.

        *observer* (e.g. an :class:`repro.obs.EpochTimelineRecorder`)
        attaches to the simulator run; ``None`` keeps the unobserved hot
        path.  *backend* selects the execution backend (``"reference"``,
        ``"event"``, ``"batch"``); ``None`` defers to ``$REPRO_BACKEND``
        and then the default.  Every backend returns a bit-identical
        result, so the choice never changes what is measured.
        """
        annotated = self.annotated(workload, variant, memory_config, sharing, tag)
        config = self.resolved_config(workload, variant, config, **core_changes)
        return resolve_backend(backend).simulate(
            config, annotated, observer=observer,
        )


serialize.register(ExperimentSettings, SharingSettings)
