"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, points: Mapping[object, float], precision: int = 3
) -> str:
    """Render one figure series as ``name: key=value key=value ...``."""
    body = " ".join(
        f"{key}={value:.{precision}f}" for key, value in points.items()
    )
    return f"{name}: {body}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
