"""Generic parameter sweeps over MLPsim configurations.

The figure drivers hard-code the paper's sweeps; this module provides the
general tool for new studies: give it a workbench, a workload and a grid of
core-configuration axes, get back one record per point with the headline
metrics, ready for tabulation or plotting.

Example::

    from repro.harness import Workbench
    from repro.harness.sweeps import sweep

    bench = Workbench()
    records = sweep(
        bench, "database",
        store_queue=[16, 32, 64],
        store_prefetch=list(StorePrefetchMode),
    )
    best = min(records, key=lambda r: r.epi_per_1000)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.results import SimulationResult
from .experiment import Workbench


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the knob values and the measured metrics."""

    workload: str
    variant: str
    point: Tuple[Tuple[str, Any], ...]
    epi_per_1000: float
    mlp: float
    store_mlp: float
    store_overlap_fraction: float
    store_bandwidth_overhead: float

    @property
    def knobs(self) -> Dict[str, Any]:
        return dict(self.point)

    def label(self) -> str:
        """Compact ``knob=value`` rendering for table rows."""
        return " ".join(
            f"{name}={getattr(value, 'value', value)}"
            for name, value in self.point
        )


def _record(
    workload: str,
    variant: str,
    point: Tuple[Tuple[str, Any], ...],
    result: SimulationResult,
) -> SweepRecord:
    return SweepRecord(
        workload=workload,
        variant=variant,
        point=point,
        epi_per_1000=result.epi_per_1000,
        mlp=result.mlp,
        store_mlp=result.store_mlp,
        store_overlap_fraction=result.store_overlap_fraction,
        store_bandwidth_overhead=result.store_bandwidth_overhead,
    )


def sweep(
    bench: Workbench,
    workload: str,
    variant: str = "pc",
    **axes: Sequence[Any],
) -> List[SweepRecord]:
    """Run the cartesian product of *axes* (core-config fields) and return
    one record per point, in grid order."""
    if not axes:
        raise ValueError("a sweep needs at least one axis")
    names = list(axes)
    records: List[SweepRecord] = []
    for values in itertools.product(*(axes[name] for name in names)):
        point = tuple(zip(names, values))
        result = bench.run(workload, variant=variant, **dict(point))
        records.append(_record(workload, variant, point, result))
    return records


def sweep_workloads(
    bench: Workbench,
    workloads: Iterable[str],
    variant: str = "pc",
    **axes: Sequence[Any],
) -> Dict[str, List[SweepRecord]]:
    """:func:`sweep` across several workloads."""
    return {
        workload: sweep(bench, workload, variant, **axes)
        for workload in workloads
    }


def best_point(
    records: Sequence[SweepRecord],
    metric: str = "epi_per_1000",
    minimize: bool = True,
) -> SweepRecord:
    """The record optimizing *metric* (ties go to the earliest grid point)."""
    if not records:
        raise ValueError("no records to choose from")
    chooser = min if minimize else max
    return chooser(records, key=lambda r: getattr(r, metric))


def pareto_front(
    records: Sequence[SweepRecord],
    metrics: Sequence[str] = ("epi_per_1000", "store_bandwidth_overhead"),
) -> List[SweepRecord]:
    """Records not dominated on all of *metrics* (all minimized).

    Useful for cost/performance trade-offs such as EPI vs prefetch
    bandwidth — the axis along which the paper positions the SMAC.
    """
    front: List[SweepRecord] = []
    for candidate in records:
        candidate_values = [getattr(candidate, m) for m in metrics]
        dominated = False
        for other in records:
            if other is candidate:
                continue
            other_values = [getattr(other, m) for m in metrics]
            if all(o <= c for o, c in zip(other_values, candidate_values)) \
                    and any(o < c for o, c in zip(other_values, candidate_values)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
