"""Generic parameter sweeps over MLPsim configurations.

The figure drivers hard-code the paper's sweeps; this module provides the
general tool for new studies: give it a workbench, a workload and a grid of
core-configuration axes, get back one record per point with the headline
metrics, ready for tabulation or plotting.

Execution goes through :func:`repro.api.sweep` (the pre-v2 module-level
``sweep``/``sweep_workloads`` entry points were removed per the DESIGN.md
timeline)::

    from repro import api

    spec = api.SweepSpec.build(
        "database",
        store_queue=[16, 32, 64],
        store_prefetch=["sp0", "sp1", "sp2"],
    )
    records = api.sweep(spec)
    best = min(records, key=lambda r: r.epi_per_1000)

``api.sweep`` fans the grid out across worker processes; records come
back in grid order with numbers bit-identical to serial execution (the
pipeline is deterministic and the workers share the artifact cache).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from ..config import ConsistencyModel, ScoutMode, StorePrefetchMode
from ..core.results import SimulationResult
from ..engine import serialize

if TYPE_CHECKING:
    from ..engine.runner import JobSpec, RunReport

#: Named-value axes: the string spellings accepted on the CLI and over the
#: service protocol for enum-typed core-configuration fields.
AXIS_ENUMS: Dict[str, Dict[str, Any]] = {
    "store_prefetch": {mode.value: mode for mode in StorePrefetchMode},
    "scout": {mode.value: mode for mode in ScoutMode},
    "consistency": {model.value: model for model in ConsistencyModel},
}

#: Boolean policy knobs on :class:`repro.config.CoreConfig`.
AXIS_BOOLS = ("sle", "prefetch_past_serializing", "perfect_stores")

#: Integer sizing knobs on :class:`repro.config.CoreConfig`.
AXIS_INTS = (
    "fetch_buffer", "issue_window", "rob", "load_buffer",
    "store_buffer", "store_queue", "coalesce_bytes",
)

#: Job-level axes: sweepable like knobs but carried on the
#: :class:`~repro.engine.runner.JobSpec` itself rather than inside
#: ``core_changes`` — ``contexts`` (SMT hardware contexts) and
#: ``scheduler`` (the SMT thread-scheduling policy).
AXIS_JOB = ("contexts", "scheduler")


def valid_axes() -> Dict[str, str]:
    """Every sweepable axis name mapped to a description of its values.

    These are the scalar fields of :class:`repro.config.CoreConfig` (the
    nested ``branch`` predictor config is not sweepable through an axis)
    plus the job-level SMT axes ``contexts`` and ``scheduler``.
    """
    from ..smt.schedulers import valid_schedulers

    axes = {name: "int" for name in AXIS_INTS}
    axes.update({name: "bool ('true'/'false')" for name in AXIS_BOOLS})
    axes.update({
        name: f"one of {sorted(mapping)}"
        for name, mapping in AXIS_ENUMS.items()
    })
    axes["contexts"] = "int >= 1 (SMT hardware contexts)"
    axes["scheduler"] = f"one of {valid_schedulers()}"
    return dict(sorted(axes.items()))


def _axis_error(name: str, value: Any, expected: str) -> ValueError:
    return ValueError(
        f"bad value {value!r} for axis {name!r}: expected {expected}"
    )


def coerce_axis_value(name: str, value: Any) -> Any:
    """Turn one externally-supplied axis value into its typed form.

    Strings naming enum members (``"sp1"``, ``"hws2"``, ``"wc"``) become the
    enum; ``"true"``/``"false"`` become booleans; integer-looking strings
    become ints.  An unknown axis name, or a value the axis's type cannot
    represent, raises ``ValueError`` spelling out the valid axis names and
    the expected values — the message the CLI and the service return
    verbatim, so a typo comes back actionable instead of as a bare
    ``KeyError`` deep in config construction.
    """
    if name == "contexts":
        if isinstance(value, str):
            try:
                value = int(value)
            except ValueError:
                raise _axis_error(name, value, "an integer >= 1") from None
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise _axis_error(name, value, "an integer >= 1")
        return value
    if name == "scheduler":
        from ..smt.schedulers import resolve_scheduler

        if not isinstance(value, str):
            raise _axis_error(name, value, "a scheduler name")
        return resolve_scheduler(value).name
    mapping = AXIS_ENUMS.get(name)
    if mapping is not None:
        if isinstance(value, str):
            try:
                return mapping[value.lower()]
            except KeyError:
                raise _axis_error(
                    name, value, f"one of {sorted(mapping)}"
                ) from None
        if value in mapping.values():
            return value
        raise _axis_error(name, value, f"one of {sorted(mapping)}")
    if name in AXIS_BOOLS:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise _axis_error(name, value, "a bool or 'true'/'false'")
    if name in AXIS_INTS:
        if isinstance(value, bool):
            raise _axis_error(name, value, "an integer")
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise _axis_error(name, value, "an integer") from None
        raise _axis_error(name, value, "an integer")
    lines = ", ".join(
        f"{axis} ({expected})" for axis, expected in valid_axes().items()
    )
    raise ValueError(
        f"unknown sweep axis {name!r}; valid axes: {lines}"
    )


@dataclass(frozen=True)
class SweepRecord:
    """One point of a sweep: the knob values and the measured metrics."""

    workload: str
    variant: str
    point: Tuple[Tuple[str, Any], ...]
    epi_per_1000: float
    mlp: float
    store_mlp: float
    store_overlap_fraction: float
    store_bandwidth_overhead: float

    @property
    def knobs(self) -> Dict[str, Any]:
        return dict(self.point)

    def label(self) -> str:
        """Compact ``knob=value`` rendering for table rows."""
        return " ".join(
            f"{name}={getattr(value, 'value', value)}"
            for name, value in self.point
        )


@dataclass(frozen=True)
class SweepSpec:
    """A serializable sweep request: workloads x a grid of axes.

    This is the wire form of a sweep — what ``mlpsim submit`` posts to the
    service and what the service hashes for in-flight deduplication.  Axes
    are stored as ``((name, (value, ...)), ...)`` so the spec is hashable
    and tokenizes stably for :func:`repro.engine.cache.content_key`.
    """

    workloads: Tuple[str, ...]
    variant: str = "pc"
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a sweep spec needs at least one workload")
        if not self.axes:
            raise ValueError("a sweep spec needs at least one axis")

    @classmethod
    def build(
        cls,
        workloads: str | Sequence[str],
        variant: str = "pc",
        **axes: Sequence[Any],
    ) -> "SweepSpec":
        """The ergonomic constructor: coerces axis values (enum names,
        ``"true"``/``"false"``, numeric strings) into their typed form."""
        if isinstance(workloads, str):
            workloads = (workloads,)
        return cls(
            workloads=tuple(workloads),
            variant=variant,
            axes=tuple(
                (name, tuple(coerce_axis_value(name, v) for v in values))
                for name, values in axes.items()
            ),
        )

    @property
    def axes_dict(self) -> Dict[str, List[Any]]:
        return {name: list(values) for name, values in self.axes}

    def points(self) -> List[Tuple[Tuple[str, Any], ...]]:
        return grid_points(self.axes_dict)

    def to_jobs(self) -> "List[JobSpec]":
        """The grid as runner jobs: workload-major, grid order within.

        The job-level axes (``contexts``, ``scheduler``) are lifted out of
        the point onto the :class:`~repro.engine.runner.JobSpec` itself;
        everything else travels as ``core_changes``.
        """
        from ..engine.runner import JobSpec

        jobs = []
        for workload in self.workloads:
            for point in self.points():
                knobs = tuple(
                    (name, value) for name, value in point
                    if name not in AXIS_JOB
                )
                job_fields = dict(
                    (name, value) for name, value in point
                    if name in AXIS_JOB
                )
                jobs.append(JobSpec(
                    workload=workload,
                    variant=self.variant,
                    core_changes=knobs,
                    contexts=int(job_fields.get("contexts", 1)),
                    scheduler=str(job_fields.get("scheduler", "")),
                ))
        return jobs

    def records(self, report: "RunReport") -> List[SweepRecord]:
        """Pair this spec's grid with a report from :meth:`to_jobs` jobs."""
        report.raise_on_failure()
        points = self.points()
        expected = len(self.workloads) * len(points)
        if len(report.jobs) != expected:
            raise ValueError(
                f"report has {len(report.jobs)} jobs, spec expects {expected}"
            )
        jobs = iter(report.jobs)
        return [
            _record(workload, self.variant, point, next(jobs).result)
            for workload in self.workloads
            for point in points
        ]

    def to_dict(self) -> Dict[str, Any]:
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        spec = serialize.from_jsonable(data)
        if not isinstance(spec, cls):
            raise serialize.SerializeError(
                f"expected a SweepSpec payload, decoded {type(spec).__name__}"
            )
        return spec


def _record(
    workload: str,
    variant: str,
    point: Tuple[Tuple[str, Any], ...],
    result: SimulationResult,
) -> SweepRecord:
    return SweepRecord(
        workload=workload,
        variant=variant,
        point=point,
        epi_per_1000=result.epi_per_1000,
        mlp=result.mlp,
        store_mlp=result.store_mlp,
        store_overlap_fraction=result.store_overlap_fraction,
        store_bandwidth_overhead=result.store_bandwidth_overhead,
    )


def grid_points(
    axes: Dict[str, Sequence[Any]],
) -> List[Tuple[Tuple[str, Any], ...]]:
    """The cartesian product of *axes* as ``((name, value), ...)`` points."""
    if not axes:
        raise ValueError("a sweep needs at least one axis")
    names = list(axes)
    return [
        tuple(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def best_point(
    records: Sequence[SweepRecord],
    metric: str = "epi_per_1000",
    minimize: bool = True,
) -> SweepRecord:
    """The record optimizing *metric* (ties go to the earliest grid point)."""
    if not records:
        raise ValueError("no records to choose from")
    chooser = min if minimize else max
    return chooser(records, key=lambda r: getattr(r, metric))


def pareto_front(
    records: Sequence[SweepRecord],
    metrics: Sequence[str] = ("epi_per_1000", "store_bandwidth_overhead"),
) -> List[SweepRecord]:
    """Records not dominated on all of *metrics* (all minimized).

    Useful for cost/performance trade-offs such as EPI vs prefetch
    bandwidth — the axis along which the paper positions the SMAC.
    """
    front: List[SweepRecord] = []
    for candidate in records:
        candidate_values = [getattr(candidate, m) for m in metrics]
        dominated = False
        for other in records:
            if other is candidate:
                continue
            other_values = [getattr(other, m) for m in metrics]
            if all(o <= c for o, c in zip(other_values, candidate_values)) \
                    and any(o < c for o, c in zip(other_values, candidate_values)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


serialize.register(SweepSpec, SweepRecord)
