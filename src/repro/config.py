"""Configuration dataclasses for the simulator and its substrates.

The default values reproduce the paper's Section 4.3 processor configuration:

- private 32KB 4-way 64B-line L1 instruction and data caches,
- a shared 2MB 4-way 64B-line L2,
- 64K-entry gshare with a 16K-entry BTB and 16-entry return address stack,
- 32-entry fetch buffer, 32-entry issue window, 64-entry reorder buffer,
- 16-entry store buffer, 32-entry store queue, store prefetch at retire,
  8-byte store coalescing, 64-entry load buffer,
- processor consistency (SPARC TSO flavour), and
- off-chip memory latency of 500 cycles (L1 4 cycles, L2 15 cycles).

All configs are frozen dataclasses: a configuration is a value, shared freely
between the simulator, workload generators and the benchmark harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import CacheGeometryError, ConfigError


class ConsistencyModel(enum.Enum):
    """Memory consistency model implemented by the simulated processor.

    ``PC`` is processor consistency as implemented by SPARC TSO: stores become
    globally visible in program order, and ``casa``/``membar`` drain the store
    buffer and store queue before executing.  ``WC`` is weak consistency as
    implemented by the PowerPC architecture: stores may commit out of order
    and lock acquisition uses ``lwarx``/``stwcx``/``isync`` sequences that do
    not drain the store queue.
    """

    PC = "pc"
    WC = "wc"


class StorePrefetchMode(enum.Enum):
    """Hardware store-prefetch scheme (paper Section 3.3.2).

    ``NONE`` (Sp0) issues the write request only when the store reaches the
    head of the store queue.  ``AT_RETIRE`` (Sp1) issues a prefetch-for-write
    when the store retires into the store queue, overlapping all missing
    stores resident in the store queue.  ``AT_EXECUTE`` (Sp2) issues the
    prefetch as soon as the store address is generated, overlapping missing
    stores in both the store buffer and the store queue.
    """

    NONE = "sp0"
    AT_RETIRE = "sp1"
    AT_EXECUTE = "sp2"


class ScoutMode(enum.Enum):
    """Hardware Scout configuration (paper Section 3.3.5).

    ``NONE`` disables scouting.  ``HWS0`` enters scout mode on a missing-load
    epoch trigger and prefetches only missing loads and missing instructions.
    ``HWS1`` additionally prefetches missing stores encountered in scout mode.
    ``HWS2`` (the paper's novel optimization) also *enters* scout mode when
    the store queue is full and rename/dispatch is stalled.
    """

    NONE = "none"
    HWS0 = "hws0"
    HWS1 = "hws1"
    HWS2 = "hws2"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise CacheGeometryError(
                f"cache size and associativity must be positive, got "
                f"{self.size_bytes}B {self.associativity}-way"
            )
        if not _is_pow2(self.line_bytes):
            raise CacheGeometryError(
                f"line size must be a power of two, got {self.line_bytes}"
            )
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise CacheGeometryError(
                f"{self.size_bytes}B cache is not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )
        if not _is_pow2(self.num_sets):
            raise CacheGeometryError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class SmacConfig:
    """Store Miss Accelerator geometry (paper Section 3.3.3).

    The SMAC is a heavily sub-blocked set-associative structure held in the
    L2 subsystem.  Each entry tags one ``line_bytes`` region and keeps one
    exclusive-state bit per ``sub_block_bytes`` sub-block (one bit per L2
    cache line).  The paper's example: 8K entries with 2048-byte lines that
    are 32-way sub-blocked cover 16MB with a total SRAM cost of 64KB.
    """

    entries: int = 8192
    line_bytes: int = 2048
    sub_block_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        _require(self.entries > 0, "SMAC must have at least one entry")
        _require(
            _is_pow2(self.line_bytes) and _is_pow2(self.sub_block_bytes),
            "SMAC line and sub-block sizes must be powers of two",
        )
        _require(
            self.line_bytes % self.sub_block_bytes == 0,
            "SMAC line size must be a multiple of the sub-block size",
        )
        _require(self.associativity > 0, "SMAC associativity must be positive")
        _require(
            self.entries % self.associativity == 0,
            "SMAC entries must divide evenly into associative sets",
        )

    @property
    def sub_blocks_per_line(self) -> int:
        return self.line_bytes // self.sub_block_bytes

    @property
    def coverage_bytes(self) -> int:
        """Address space covered when every entry is valid."""
        return self.entries * self.line_bytes

    @property
    def storage_bits(self) -> int:
        """SRAM cost: per-entry tag (32 bits assumed) plus sub-block bits."""
        return self.entries * (32 + self.sub_blocks_per_line)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """gshare + BTB + return-address-stack front-end predictor."""

    gshare_entries: int = 64 * 1024
    btb_entries: int = 16 * 1024
    ras_entries: int = 16
    #: Global history depth folded into the index.  The synthetic workloads'
    #: branch outcomes are per-site biased rather than history-correlated,
    #: so a short history trains fastest; the paper's 64K-entry table is
    #: kept.  Raise this for history-correlated traces.
    history_bits: int = 3

    def __post_init__(self) -> None:
        _require(_is_pow2(self.gshare_entries), "gshare entries must be a power of two")
        _require(_is_pow2(self.btb_entries), "BTB entries must be a power of two")
        _require(self.ras_entries > 0, "RAS must have at least one entry")
        _require(
            (1 << self.history_bits) <= self.gshare_entries,
            "gshare history must not exceed the index width",
        )


@dataclass(frozen=True)
class MemoryConfig:
    """Cache hierarchy of one core/chip: L1I + L1D + shared L2 (+ optional SMAC)."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(2 * 1024 * 1024, 4))
    tlb_entries: int = 2048
    page_bytes: int = 8192
    l1_latency: int = 4
    l2_latency: int = 15
    memory_latency: int = 500
    smac: SmacConfig | None = None

    def __post_init__(self) -> None:
        _require(self.tlb_entries > 0, "TLB must have at least one entry")
        _require(_is_pow2(self.page_bytes), "page size must be a power of two")
        _require(
            0 < self.l1_latency < self.l2_latency < self.memory_latency,
            "latencies must satisfy L1 < L2 < memory",
        )
        _require(
            self.l1d.line_bytes == self.l2.line_bytes,
            "L1D and L2 must share a line size (write-through L1)",
        )


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters and store-handling policy knobs."""

    fetch_buffer: int = 32
    issue_window: int = 32
    rob: int = 64
    load_buffer: int = 64
    store_buffer: int = 16
    store_queue: int = 32
    coalesce_bytes: int = 8
    store_prefetch: StorePrefetchMode = StorePrefetchMode.AT_RETIRE
    consistency: ConsistencyModel = ConsistencyModel.PC
    scout: ScoutMode = ScoutMode.NONE
    sle: bool = False
    prefetch_past_serializing: bool = False
    perfect_stores: bool = False
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    def __post_init__(self) -> None:
        for name in ("fetch_buffer", "issue_window", "rob", "load_buffer",
                     "store_buffer", "store_queue"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(
            self.coalesce_bytes == 0 or _is_pow2(self.coalesce_bytes),
            "coalescing granularity must be zero (off) or a power of two",
        )
        _require(
            self.rob >= self.issue_window,
            "ROB must be at least as large as the issue window",
        )

    def with_(self, **changes: Any) -> "CoreConfig":
        """Return a copy with the given fields replaced.

        Enum-valued knobs accept their wire spellings (``scout="hws1"``,
        ``consistency="wc"``, ``store_prefetch="sp2"``) or the enum
        members themselves.  Any other value — a bad spelling, a number,
        a member of the wrong enum — raises :class:`ConfigError` naming
        the offending knob; silently storing the raw value would produce
        a config no simulator path recognises.
        """
        for name, value in changes.items():
            current = getattr(self, name, None)
            if isinstance(current, enum.Enum):
                kind = type(current)
                if isinstance(value, kind):
                    continue
                valid = ", ".join(member.value for member in kind)
                if isinstance(value, str):
                    try:
                        changes[name] = kind(value)
                        continue
                    except ValueError:
                        pass
                raise ConfigError(
                    f"{name} must be one of: {valid} (got {value!r})"
                )
        return replace(self, **changes)


@dataclass(frozen=True)
class SystemConfig:
    """Multiprocessor topology: chips (nodes) and cores per chip."""

    nodes: int = 2
    cores_per_node: int = 2

    def __post_init__(self) -> None:
        _require(self.nodes >= 1, "system needs at least one node")
        _require(self.cores_per_node >= 1, "each node needs at least one core")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle handed to MLPsim."""

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    system: SystemConfig = field(default_factory=SystemConfig)
    warmup_instructions: int = 50_000
    measure_instructions: int = 100_000
    #: On-chip CPI of the simulated workload (paper Table 3).  Converts the
    #: off-chip latency in cycles into instructions of on-chip computation —
    #: the window within which a store miss can fully overlap and the depth
    #: one Hardware Scout episode covers.
    cpi_on_chip: float = 1.0

    def __post_init__(self) -> None:
        _require(self.warmup_instructions >= 0, "warmup must be non-negative")
        _require(self.measure_instructions > 0, "measurement window must be positive")
        _require(self.cpi_on_chip > 0, "on-chip CPI must be positive")

    def with_core(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with core fields replaced — the common sweep idiom."""
        return replace(self, core=self.core.with_(**changes))

    def with_memory(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with memory fields replaced."""
        return replace(self, memory=replace(self.memory, **changes))

    @property
    def latency_instructions(self) -> int:
        """Instructions of on-chip computation per off-chip miss latency."""
        return max(1, round(self.memory.memory_latency / self.cpi_on_chip))

    @property
    def scout_depth(self) -> int:
        """Instructions a scout episode can cover before the trigger returns.

        A scout episode lasts one off-chip miss latency; the core runs ahead
        at roughly its on-chip IPC (paper Section 3.3.5).
        """
        return self.latency_instructions


DEFAULT_CONFIG = SimulationConfig()
