"""Front-end substrate: branch prediction and the fetch buffer.

The epoch MLP model needs the front end for two things: (1) a *mispredicted
branch dependent on a missing load* is a window termination condition, so we
need to know which dynamic branches mispredict; and (2) the fetch buffer
bounds how far fetch can run ahead of a stalled pipeline.
"""

from .branch import BranchPredictor, BranchTargetBuffer, GshareTable, ReturnAddressStack
from .fetch import FetchBuffer

__all__ = [
    "BranchPredictor",
    "BranchTargetBuffer",
    "FetchBuffer",
    "GshareTable",
    "ReturnAddressStack",
]
