"""Fetch buffer occupancy model.

The fetch buffer decouples the front end from rename.  In the epoch MLP
model it matters as a window resource: when the pipeline stalls (e.g. behind
a full store queue), fetch can run ahead by at most ``capacity`` further
instructions, extending the pool from which overlappable misses can be
discovered by prefetch-past-serializing and similar mechanisms.
"""

from __future__ import annotations


class FetchBuffer:
    """Counter-based occupancy model of the fetch buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("fetch buffer needs at least one entry")
        self.capacity = capacity
        self._occupied = 0

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def free(self) -> int:
        return self.capacity - self._occupied

    @property
    def full(self) -> bool:
        return self._occupied >= self.capacity

    def push(self, count: int = 1) -> int:
        """Insert up to *count* fetched instructions; return how many fit."""
        if count < 0:
            raise ValueError("count must be non-negative")
        accepted = min(count, self.free)
        self._occupied += accepted
        return accepted

    def pop(self, count: int = 1) -> int:
        """Remove up to *count* instructions into rename; return how many."""
        if count < 0:
            raise ValueError("count must be non-negative")
        drained = min(count, self._occupied)
        self._occupied -= drained
        return drained

    def flush(self) -> None:
        """Empty the buffer (pipeline flush / scout exit)."""
        self._occupied = 0
