"""gshare direction prediction, branch target buffer and return address stack.

The paper's configuration: 64K-entry gshare, 16K-entry BTB, 16-entry RAS.
The predictor is consulted once per dynamic control transfer during trace
annotation; the resulting per-branch mispredict flags are core-configuration
independent and are reused across every simulator sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BranchPredictorConfig
from ..isa import Instruction, InstructionClass


class GshareTable:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int, history_bits: int) -> None:
        if entries & (entries - 1):
            raise ValueError("gshare entries must be a power of two")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        # 2-bit counters initialised weakly taken: commercial code branches
        # are taken-biased (loops, error checks).
        self._counters = bytearray([2] * entries)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the global history."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class BranchTargetBuffer:
    """Direct-mapped tag/target store.

    A taken branch whose target is absent (or stale) in the BTB redirects
    fetch late; we count that as a misprediction, matching how trace-driven
    front-end models treat BTB misses.
    """

    def __init__(self, entries: int) -> None:
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self._mask = entries - 1
        self._tags: list[int] = [-1] * entries
        self._targets: list[int] = [0] * entries

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target, or None on BTB miss."""
        index = (pc >> 2) & self._mask
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index = (pc >> 2) & self._mask
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """Fixed-depth return address predictor with wrap-around overwrite."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("RAS needs at least one entry")
        self._stack: list[int] = []
        self._entries = entries

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._entries:
            del self._stack[0]
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        if self._stack:
            return self._stack.pop()
        return None

    @property
    def depth(self) -> int:
        return len(self._stack)


@dataclass
class BranchStats:
    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    ras_mispredictions: int = 0

    @property
    def mispredict_ratio(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def reset(self) -> None:
        self.branches = self.mispredictions = 0
        self.btb_misses = self.ras_mispredictions = 0


class BranchPredictor:
    """Combined gshare + BTB + RAS front-end predictor."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self.gshare = GshareTable(config.gshare_entries, config.history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.stats = BranchStats()

    def observe(self, inst: Instruction) -> bool:
        """Predict then train on one dynamic control transfer.

        Returns True when the dynamic instance was mispredicted (wrong
        direction, missing BTB target for a taken branch, or wrong RAS top
        for a return).
        """
        self.stats.branches += 1
        if inst.kind is InstructionClass.CALL:
            self.ras.push(inst.pc + 4)
            self.btb.update(inst.pc, inst.target)
            return False  # unconditional, target in instruction
        if inst.kind is InstructionClass.RETURN:
            predicted = self.ras.pop()
            if predicted != inst.target:
                self.stats.mispredictions += 1
                self.stats.ras_mispredictions += 1
                return False if predicted is None else True
            return False
        # Conditional branch: direction via gshare, target via BTB.
        predicted_taken = self.gshare.predict(inst.pc)
        mispredicted = predicted_taken != inst.taken
        if inst.taken and not mispredicted:
            target = self.btb.lookup(inst.pc)
            if target != inst.target:
                mispredicted = True
                self.stats.btb_misses += 1
        self.gshare.update(inst.pc, inst.taken)
        if inst.taken:
            self.btb.update(inst.pc, inst.target)
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted
