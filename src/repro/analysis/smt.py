"""SMT scheduler comparison analysis.

Post-processing over :class:`~repro.smt.results.SmtResult` objects — the
views the SMT study presents: a policy-by-policy table of the standard
multiprogram metrics (STP, ANTT, fairness) and the per-context
normalized-turnaround breakdown that explains *why* a policy wins.

The one driver helper, :func:`compare_schedulers`, runs the same
workload mix once per scheduling policy on a shared workbench (traces
are annotated once and cached), so the comparison isolates the policy:
every run sees byte-identical per-context traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..smt.results import SmtResult

if TYPE_CHECKING:
    from ..harness.experiment import Workbench

__all__ = [
    "SchedulerComparison",
    "compare_schedulers",
    "context_breakdown",
    "scheduler_rows",
]


@dataclass(frozen=True)
class SchedulerComparison:
    """One workload mix run under several scheduling policies."""

    workload: str
    contexts: int
    results: Tuple[SmtResult, ...]

    def by_scheduler(self) -> Dict[str, SmtResult]:
        return {result.scheduler: result for result in self.results}

    def best(self, metric: str = "stp") -> SmtResult:
        """The winning policy on *metric* (STP/fairness maximize; ANTT and
        EPI minimize; ties go to the earlier run)."""
        minimize = metric in ("antt", "epi_per_1000")
        chooser = min if minimize else max
        return chooser(self.results, key=lambda r: getattr(r, metric))

    def summary(self) -> str:
        lines = [
            f"{self.workload} x{self.contexts}: "
            f"best STP {self.best('stp').scheduler}, "
            f"best ANTT {self.best('antt').scheduler}"
        ]
        for scheduler, stp, antt, fairness, epi in scheduler_rows(
            self.results
        ):
            lines.append(
                f"  {scheduler:12s} STP={stp:.3f} ANTT={antt:.3f} "
                f"fairness={fairness:.3f} EPI/1000={epi:.3f}"
            )
        return "\n".join(lines)


def scheduler_rows(
    results: Sequence[SmtResult],
) -> List[Tuple[str, float, float, float, float]]:
    """``(scheduler, stp, antt, fairness, epi_per_1000)`` table rows."""
    return [
        (
            result.scheduler,
            result.stp,
            result.antt,
            result.fairness,
            result.epi_per_1000,
        )
        for result in results
    ]


def context_breakdown(
    result: SmtResult,
) -> List[Tuple[int, str, float, float, int]]:
    """Per-context ``(cid, workload, epi_per_1000, ntt, spin_slots)`` —
    the normalized-turnaround decomposition behind the aggregate ANTT."""
    return [
        (
            context.cid,
            context.workload,
            context.epi_per_1000,
            context.normalized_turnaround,
            context.spin_slots,
        )
        for context in result.contexts
    ]


def compare_schedulers(
    bench: "Workbench",
    workload: str,
    *,
    contexts: int = 2,
    schedulers: Sequence[str] = ("round_robin", "icount", "mlp"),
    variant: str = "pc",
    **core_changes,
) -> SchedulerComparison:
    """Run *workload* (a mix spec) once per policy on one shared bench.

    Per-context traces are annotated once and served from the bench's
    artifact cache on every subsequent policy run, so the only variable
    across the returned results is the scheduler itself.
    """
    from ..smt import run_smt

    results = tuple(
        run_smt(
            bench, workload, contexts=contexts, scheduler=scheduler,
            variant=variant, **core_changes,
        )
        for scheduler in schedulers
    )
    return SchedulerComparison(
        workload=workload, contexts=contexts, results=results,
    )
