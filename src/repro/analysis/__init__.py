"""Result post-processing for the paper's analyses.

These helpers turn :class:`~repro.core.SimulationResult` objects into the
specific views the paper's figures present: the Figure 3 termination
histograms (:mod:`~repro.analysis.termination`), the Figure 4 MLP
distributions (:mod:`~repro.analysis.mlp_stats`), and the Table 2 overlap
accounting (:mod:`~repro.analysis.overlap`) — plus the SMT scheduler
comparison views (:mod:`~repro.analysis.smt`).
"""

from .mlp_stats import (
    ExpensiveStoreStats,
    expensive_store_stats,
    mlp_profile,
    store_mlp_histogram,
)
from .overlap import OverlapBreakdown, overlap_breakdown
from .smt import (
    SchedulerComparison,
    compare_schedulers,
    context_breakdown,
    scheduler_rows,
)
from .termination import (
    TERMINATION_ORDER,
    dominant_condition,
    store_caused_fraction,
    termination_stack,
)

__all__ = [
    "ExpensiveStoreStats",
    "OverlapBreakdown",
    "SchedulerComparison",
    "TERMINATION_ORDER",
    "compare_schedulers",
    "context_breakdown",
    "dominant_condition",
    "expensive_store_stats",
    "mlp_profile",
    "overlap_breakdown",
    "scheduler_rows",
    "store_caused_fraction",
    "store_mlp_histogram",
    "termination_stack",
]
