"""Window-termination analysis (the paper's Figure 3)."""

from __future__ import annotations

from typing import List, Tuple

from ..core.epoch import TerminationCondition
from ..core.results import SimulationResult

#: Figure 3 legend order, top to bottom.
TERMINATION_ORDER: Tuple[TerminationCondition, ...] = (
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
    TerminationCondition.STORE_SERIALIZE,
    TerminationCondition.OTHER_SERIALIZE,
    TerminationCondition.MISPRED_BRANCH,
    TerminationCondition.INSTRUCTION_MISS,
    TerminationCondition.WINDOW_FULL,
)


def termination_stack(
    result: SimulationResult, store_mlp_at_least: int = 1
) -> List[Tuple[TerminationCondition, float]]:
    """Stacked-bar data in the paper's legend order.

    Fractions are of *all* epochs, restricted to epochs whose store MLP is
    at least *store_mlp_at_least* (Figure 3 plots epochs where store MLP
    >= 1); conditions with zero weight are included so stacks align across
    workloads.
    """
    fractions = result.termination_fractions(store_mlp_at_least)
    return [(cond, fractions.get(cond, 0.0)) for cond in TERMINATION_ORDER]


def store_caused_fraction(result: SimulationResult) -> float:
    """Fraction of all epochs ended by a store-handling condition."""
    if not result.epochs:
        return 0.0
    caused = sum(1 for e in result.epochs if e.termination.store_caused)
    return caused / len(result.epochs)


def dominant_condition(
    result: SimulationResult, store_mlp_at_least: int = 1
) -> TerminationCondition | None:
    """The most frequent termination among qualifying epochs."""
    fractions = result.termination_fractions(store_mlp_at_least)
    if not fractions:
        return None
    return max(fractions.items(), key=lambda item: item[1])[0]
