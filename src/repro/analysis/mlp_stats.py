"""MLP distribution analysis (the paper's Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.results import SimulationResult


def store_mlp_histogram(
    result: SimulationResult, cap: int = 10
) -> Dict[int, float]:
    """Fraction of epochs by store MLP (bucket *cap* = ">= cap").

    The zero-store-MLP bucket is included (the paper omits its bar but its
    mass explains why the plotted bars do not sum to one).
    """
    if not result.epochs:
        return {}
    counts: Dict[int, int] = {}
    for epoch in result.epochs:
        key = min(epoch.store_misses, cap)
        counts[key] = counts.get(key, 0) + 1
    total = len(result.epochs)
    return {key: count / total for key, count in sorted(counts.items())}


def mlp_profile(
    result: SimulationResult,
    store_cap: int = 10,
    load_cap: int = 5,
) -> List[Tuple[int, List[Tuple[int, float]]]]:
    """Figure 4 bars: for each store MLP >= 1, the (load+inst MLP, fraction)
    segments, both axes capped like the paper's buckets."""
    cells = result.mlp_distribution().bucketed(store_cap, load_cap)
    bars: Dict[int, Dict[int, float]] = {}
    for (store_mlp, load_mlp), fraction in cells.items():
        if store_mlp == 0:
            continue
        bars.setdefault(store_mlp, {})[load_mlp] = fraction
    return [
        (store_mlp, sorted(segments.items()))
        for store_mlp, segments in sorted(bars.items())
    ]


@dataclass(frozen=True)
class ExpensiveStoreStats:
    """Epochs containing a missing store overlapped with nothing else.

    These are the paper's "most expensive" missing stores: store MLP == 1
    and no missing loads or instructions in the epoch.
    """

    expensive_epochs: int
    total_epochs: int

    @property
    def fraction(self) -> float:
        if self.total_epochs == 0:
            return 0.0
        return self.expensive_epochs / self.total_epochs


def expensive_store_stats(result: SimulationResult) -> ExpensiveStoreStats:
    """Count epochs where a lone missing store is the only off-chip access."""
    expensive = sum(
        1
        for epoch in result.epochs
        if epoch.store_misses == 1 and epoch.load_inst_mlp == 0
    )
    return ExpensiveStoreStats(
        expensive_epochs=expensive, total_epochs=len(result.epochs)
    )
