"""Store-overlap accounting (the paper's Table 2).

Missing stores end up in one of three buckets:

- *fully overlapped with computation* — the processor never stalled while
  the store's miss was outstanding (no epoch charged),
- *accelerated* — the SMAC (or a perfect-store model) hid the latency,
- *epoch-overlapped* — the miss participated in an epoch, i.e. its latency
  was exposed (possibly shared with other misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import SimulationResult


@dataclass(frozen=True)
class OverlapBreakdown:
    """Where every missing store's latency went."""

    fully_overlapped: int
    accelerated: int
    epoch_overlapped: int

    @property
    def total(self) -> int:
        return self.fully_overlapped + self.accelerated + self.epoch_overlapped

    @property
    def overlap_fraction(self) -> float:
        """Table 2's metric: fully-overlapped share of all missing stores."""
        return self.fully_overlapped / self.total if self.total else 0.0

    @property
    def exposed_fraction(self) -> float:
        """Share of missing stores whose latency reached an epoch."""
        return self.epoch_overlapped / self.total if self.total else 0.0


def overlap_breakdown(result: SimulationResult) -> OverlapBreakdown:
    """Classify every missing store the simulation saw."""
    return OverlapBreakdown(
        fully_overlapped=result.fully_overlapped_stores,
        accelerated=result.accelerated_stores,
        epoch_overlapped=result.store_miss_count,
    )
