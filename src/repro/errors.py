"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so callers
can catch package-level failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TraceError(ReproError):
    """A trace stream is malformed or used incorrectly."""


class TraceFormatError(TraceError):
    """A serialized trace file could not be decoded."""


class CacheGeometryError(ConfigError):
    """A cache was configured with an impossible geometry."""


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency."""


class CalibrationError(ReproError):
    """A workload generator could not be calibrated to its targets."""
