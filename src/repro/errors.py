"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so callers
can catch package-level failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.

Each class carries a stable machine-readable ``code`` string.  The service
layer mirrors it into 4xx/5xx JSON bodies (``{"error": ..., "code": ...}``)
so clients can branch on the code without parsing messages, and messages
stay free to improve without breaking anyone.

Two classes multiple-inherit from builtins for compatibility with the
pre-unification surface: :class:`EngineConfigError` is still a
``ValueError`` and :class:`BatchFailedError` is still a ``RuntimeError``,
so existing ``except ValueError`` / ``except RuntimeError`` call sites keep
working while new code catches :class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    #: Stable machine-readable identifier, mirrored into service responses.
    code: str = "repro-error"


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""

    code = "config-invalid"


class TraceError(ReproError):
    """A trace stream is malformed or used incorrectly."""

    code = "trace-invalid"


class TraceFormatError(TraceError):
    """A serialized trace file could not be decoded."""

    code = "trace-format"


class CacheGeometryError(ConfigError):
    """A cache was configured with an impossible geometry."""

    code = "cache-geometry"


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency."""

    code = "simulation-wedged"


class CalibrationError(ReproError):
    """A workload generator could not be calibrated to its targets."""

    code = "calibration-failed"


class ShardBoundaryError(ReproError):
    """A shard plan's boundary does not match the simulation it segments.

    Raised when a shard run does not pass through its planned stop position
    at an epoch boundary, or when per-shard results cannot be merged into an
    exact whole-run result (overlapping or gapped spans).
    """

    code = "shard-boundary"


class CheckpointCorruptError(ReproError):
    """A stored simulator checkpoint failed its integrity check.

    The snapshot digest did not match, or the snapshot disagrees with the
    trace/configuration it claims to belong to.  Callers treat the
    checkpoint as absent and restart the shard from its beginning.
    """

    code = "checkpoint-corrupt"


class FaultInjectedError(ReproError):
    """A deliberately injected fault fired (test/CI recovery drills only).

    Raised on the serial execution path, where killing the process would
    take the caller down with it; pool workers hard-exit instead.  Either
    way the engine's retry machinery must recover the job from its last
    checkpoint.
    """

    code = "fault-injected"


class ProtocolError(ReproError):
    """A malformed or unserviceable service request, with its HTTP status."""

    code = "protocol-invalid"

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class EngineError(ReproError):
    """The parallel engine could not execute a batch as asked."""

    code = "engine-error"


class EngineConfigError(EngineError, ValueError):
    """An :class:`~repro.engine.runner.EngineRunner` parameter or job spec
    is invalid.  Also a ``ValueError`` for backward compatibility."""

    code = "engine-config"


class BatchFailedError(EngineError, RuntimeError):
    """A batch finished with failed jobs and the caller asked to raise.
    Also a ``RuntimeError`` for backward compatibility."""

    code = "batch-failed"


class BackendError(ReproError):
    """An execution backend could not be selected or run."""

    code = "backend-error"


class UnknownBackendError(BackendError, ValueError):
    """A backend name does not match any registered backend.

    Also a ``ValueError``: an unknown name is an argument error at the api
    surface (the service layer maps it to a structured 400 instead).
    """

    code = "backend-unknown"


class BackendUnavailableError(BackendError):
    """A registered backend cannot run because an optional dependency is
    missing (e.g. the ``batch`` backend without numpy — install the
    ``fast`` extra: ``pip install repro[fast]``)."""

    code = "backend-unavailable"


class FleetError(ReproError):
    """A fleet-level coordination failure (registration, leasing, routing)."""

    code = "fleet-error"


class UnknownWorkerError(FleetError):
    """A worker id does not match any registered (live) worker.

    Workers receive this after being evicted for missed heartbeats; the
    correct response is to re-register and resume pulling work.
    """

    code = "fleet-unknown-worker"


class SaturatedError(ReproError):
    """The service cannot accept work right now; retry after a delay.

    Carries the HTTP ``status`` to answer with (429 when the queue is full,
    503 when no workers are live or the daemon is draining) and a
    ``retry_after`` hint in seconds, surfaced as the ``Retry-After`` header.
    """

    code = "saturated"

    def __init__(
        self, message: str, status: int = 429, retry_after: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = max(1, int(round(retry_after)))
