"""Per-context workload mixes for SMT multi-context runs.

A *mix spec* names what each hardware context runs:

- a single workload (``"database"``) replicates across all contexts —
  threads of one application, the commercial-workload case the paper's
  machines actually ran;
- a ``+``-joined list (``"database+specjbb"``) assigns components to
  contexts in order, cycling when there are more contexts than
  components — server consolidation;
- a named mix from :data:`MIXES` expands to its component tuple first.

Every context gets its own deterministic trace: context *i* generates
with ``seed + i``, so replicated workloads are distinct threads, not
clones, while context 0 keeps the base seed — the anchor for the
``contexts=1`` bit-identity guarantee.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .profiles import WORKLOADS

#: Named mixes: curated scenarios for the SMT figures and benches.
MIXES: Dict[str, Tuple[str, ...]] = {
    # Store-burst heavy paired with serialization heavy: the scenario
    # where MLP-aware scheduling has the most to gain over round-robin.
    "oltp_java": ("database", "specjbb"),
    # Both sides of the web tier.
    "web_tier": ("specweb", "tpcw"),
    # All four commercial workloads, one per context.
    "commercial": ("database", "tpcw", "specjbb", "specweb"),
}


def resolve_mix(spec: str, contexts: int) -> Tuple[str, ...]:
    """Expand a mix spec into exactly *contexts* workload names.

    Unknown components raise ``ValueError`` listing the valid workloads
    and named mixes, mirroring the ``valid_axes()`` error style.
    """
    if contexts < 1:
        raise ValueError(f"contexts must be >= 1 (got {contexts})")
    name = spec.strip()
    if name in MIXES:
        components = MIXES[name]
    else:
        components = tuple(part.strip() for part in name.split("+"))
        unknown = [w for w in components if w not in WORKLOADS]
        if unknown or not all(components):
            raise ValueError(
                f"unknown workload(s) {'+'.join(components)!r} in mix "
                f"{spec!r}; valid workloads: {', '.join(sorted(WORKLOADS))}; "
                f"named mixes: {', '.join(sorted(MIXES))}"
            )
    return tuple(components[i % len(components)] for i in range(contexts))


def mix_components(spec: str) -> Tuple[str, ...]:
    """The distinct workloads a mix spec draws from (validation helper)."""
    name = spec.strip()
    if name in MIXES:
        return MIXES[name]
    return resolve_mix(spec, max(1, name.count("+") + 1))
