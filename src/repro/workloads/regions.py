"""Address-space layout for synthetic workloads.

A workload's memory behaviour is built from disjoint regions with distinct
roles: hot code/data that stays cache-resident, cold streams that defeat the
L2, a pool of private store-miss regions with spatial locality (the SMAC's
food), a shared region contended across chips, and a small pool of lock
words.  Keeping the regions disjoint makes every generated access's intent
auditable in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A contiguous, role-labelled address range."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} must have a non-negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def line(self, index: int, line_bytes: int = 64) -> int:
        """Address of the *index*-th line, wrapping within the region."""
        lines = max(1, self.size // line_bytes)
        return self.base + (index % lines) * line_bytes

    def random_address(self, rng: random.Random, align: int = 8) -> int:
        """A uniformly random aligned address inside the region."""
        span = max(1, self.size // align)
        return self.base + rng.randrange(span) * align

    def random_line(self, rng: random.Random, line_bytes: int = 64) -> int:
        """A uniformly random line base inside the region."""
        lines = max(1, self.size // line_bytes)
        return self.base + rng.randrange(lines) * line_bytes


class AddressMap:
    """Disjoint role-labelled regions packed into one address space.

    Regions are aligned to 2MB boundaries so that no two roles ever share an
    L2 set pathologically, and bases start high enough to stay clear of the
    code segment.
    """

    _ALIGN = 2 * 1024 * 1024

    def __init__(self) -> None:
        self._cursor = 0x1000_0000
        self._regions: dict[str, Region] = {}

    def add(self, name: str, size: int) -> Region:
        """Allocate a new region of at least *size* bytes."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self._cursor
        region = Region(name, base, size)
        span = (size + self._ALIGN - 1) // self._ALIGN * self._ALIGN
        self._cursor = base + span
        self._regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region_of(self, address: int) -> Region | None:
        """The region containing *address*, if any (diagnostics/tests)."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None

    @property
    def regions(self) -> dict[str, Region]:
        return dict(self._regions)
