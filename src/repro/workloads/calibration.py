"""Calibration of workload profiles against the paper's Table 1.

A profile's miss-probability knobs steer the generator, but the *achieved*
off-chip miss rates emerge from the interaction of the generated addresses
with the real cache simulation (cold lines that happen to be resident,
shared lines re-fetched after remote invalidates, and so on).  Calibration
closes the loop: generate, measure through the memory hierarchy, and scale
the steering multipliers proportionally, iterating until every rate lands
within tolerance of its Table 1 target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MemoryConfig
from ..errors import CalibrationError
from ..memory import MemorySystem, annotate_trace
from .generator import WorkloadGenerator
from .profiles import WorkloadProfile


@dataclass(frozen=True)
class MeasuredRates:
    """Achieved per-100-instruction statistics for a generated trace."""

    store_frequency: float
    store_miss_per_100: float
    load_miss_per_100: float
    inst_miss_per_100: float

    def __str__(self) -> str:
        return (
            f"stores/100={self.store_frequency:.2f} "
            f"store-miss/100={self.store_miss_per_100:.3f} "
            f"load-miss/100={self.load_miss_per_100:.3f} "
            f"inst-miss/100={self.inst_miss_per_100:.3f}"
        )


def measure_profile(
    profile: WorkloadProfile,
    memory_config: MemoryConfig | None = None,
    instructions: int = 120_000,
    warmup: int = 40_000,
    seed: int = 0,
) -> MeasuredRates:
    """Generate a trace and measure its off-chip miss rates."""
    if instructions <= warmup:
        raise CalibrationError("measurement window must exceed the warmup")
    memory = MemorySystem(memory_config or MemoryConfig())
    trace = WorkloadGenerator(profile, seed).generate(instructions)
    annotate_trace(trace, memory, warmup=warmup)
    stats = memory.stats
    return MeasuredRates(
        store_frequency=stats.per_100_instructions(stats.stores),
        store_miss_per_100=stats.store_miss_rate,
        load_miss_per_100=stats.load_miss_rate,
        inst_miss_per_100=stats.inst_miss_rate,
    )


def _scaled(current: float, target: float, measured: float) -> float:
    if measured <= 0:
        return current * 2.0 if target > 0 else current
    return max(0.05, min(20.0, current * target / measured))


def calibrate_profile(
    profile: WorkloadProfile,
    memory_config: MemoryConfig | None = None,
    instructions: int = 120_000,
    warmup: int = 40_000,
    iterations: int = 3,
    tolerance: float = 0.25,
    seed: int = 0,
) -> WorkloadProfile:
    """Adjust steering multipliers until Table 1 rates are met.

    Returns the calibrated profile.  Raises :class:`CalibrationError` if
    after *iterations* rounds any rate is still off by more than
    *tolerance* (relative) — except rates whose targets are so small that
    the trace carries too few events to measure reliably.
    """
    current = profile
    for _ in range(iterations):
        measured = measure_profile(
            current, memory_config, instructions, warmup, seed
        )
        window = instructions - warmup
        if _within(current, measured, tolerance, window):
            return current
        current = current.with_(
            store_miss_scale=_scaled(
                current.store_miss_scale,
                current.store_miss_per_100,
                measured.store_miss_per_100,
            ),
            load_miss_scale=_scaled(
                current.load_miss_scale,
                current.load_miss_per_100,
                measured.load_miss_per_100,
            ),
            inst_miss_scale=_scaled(
                current.inst_miss_scale,
                current.inst_miss_per_100,
                measured.inst_miss_per_100,
            ),
        )
    measured = measure_profile(current, memory_config, instructions, warmup, seed)
    if not _within(current, measured, tolerance, instructions - warmup):
        raise CalibrationError(
            f"{profile.name}: calibration did not converge; "
            f"targets (per 100) store={profile.store_miss_per_100} "
            f"load={profile.load_miss_per_100} inst={profile.inst_miss_per_100}, "
            f"achieved {measured}"
        )
    return current


def _within(
    profile: WorkloadProfile,
    measured: MeasuredRates,
    tolerance: float,
    window: int,
) -> bool:
    """Check every rate against its target with an event-count-aware bound.

    A rate of r per 100 instructions yields only ``r/100 * window`` events;
    for small windows the sampling noise (~2.5/sqrt(events) relative) can
    exceed any fixed tolerance, so the effective tolerance widens for
    rare-event targets instead of failing on noise.
    """
    pairs = (
        (profile.store_miss_per_100, measured.store_miss_per_100),
        (profile.load_miss_per_100, measured.load_miss_per_100),
        (profile.inst_miss_per_100, measured.inst_miss_per_100),
    )
    for target, achieved in pairs:
        if target < 0.02:
            continue  # too few events in any realistic trace to measure
        expected_events = target / 100.0 * window
        noise = 2.5 / math.sqrt(expected_events) if expected_events > 0 else 1.0
        effective = max(tolerance, noise)
        if abs(achieved - target) > effective * target:
            return False
    return True
