"""Synthetic commercial-workload trace generators.

The paper's traces (a full-scale database workload, TPC-W, SPECjbb2000 and
SPECweb99, captured on Sun's in-house full-system simulator) are
proprietary.  These generators produce SPARC-TSO-flavoured instruction
streams whose *structure* matches the published characteristics of those
workloads: instruction mix and Table 1 miss rates, store-miss burstiness,
critical-section density (the serializing-instruction pressure behind
Figure 3), private store-miss reuse footprints (what sizes the SMAC,
Figure 5) and cross-chip sharing (what invalidates it, Figure 6).

Each workload is described by a :class:`~repro.workloads.profiles.WorkloadProfile`
of structural knobs; :class:`~repro.workloads.generator.WorkloadGenerator`
turns a profile into a deterministic instruction stream;
:mod:`~repro.workloads.calibration` verifies/adjusts profiles against the
paper's Table 1 through the real cache simulation.
"""

from .calibration import calibrate_profile, measure_profile
from .generator import WorkloadGenerator, generate_trace
from .profiles import (
    DATABASE,
    SPECJBB,
    SPECWEB,
    TPCW,
    WORKLOADS,
    WorkloadProfile,
)
from .regions import AddressMap, Region

__all__ = [
    "AddressMap",
    "DATABASE",
    "Region",
    "SPECJBB",
    "SPECWEB",
    "TPCW",
    "WORKLOADS",
    "WorkloadGenerator",
    "WorkloadProfile",
    "calibrate_profile",
    "generate_trace",
    "measure_profile",
]
