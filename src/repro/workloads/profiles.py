"""Structural profiles of the four commercial workloads.

Each knob maps to a published characteristic:

- ``store_fraction`` reproduces Table 1's store frequency,
- ``*_miss_per_100`` reproduce Table 1's L2 miss rates (targets the
  generator steers toward through a real cache simulation),
- ``locks_per_1000`` and ``lock_after_store_miss`` set the density of
  serializing instructions and how often missing stores immediately precede
  them — the structure behind Figure 3's store-serialize dominance for
  TPC-W/SPECjbb/SPECweb and behind Figure 7's PC-vs-WC gap,
- ``store_burst_mean`` sets store-miss clustering (Figure 4's store MLP:
  high for the database workload, low for SPECjbb/SPECweb),
- ``store_regions`` sets the private store-miss reuse footprint in
  2KB regions — what determines which SMAC size saturates (Figure 5; the
  paper's saturation points: database 64K entries > SPECjbb 32K >
  SPECweb 16K, preserved here in ratio),
- ``shared_store_fraction`` routes store misses to cross-chip shared data
  (Figure 6's coherence invalidates).

The absolute region counts are scaled down from the paper's (see
``DESIGN.md``: the paper warmed the SMAC for 1G instructions, which is out
of reach in pure Python); the *ratios* between workloads are preserved, so
the figure shapes are.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict


@dataclass(frozen=True)
class WorkloadProfile:
    """Structural description of one synthetic commercial workload."""

    name: str
    # Instruction mix (fractions of dynamic instructions).
    store_fraction: float
    load_fraction: float
    branch_fraction: float
    # Table 1 targets: off-chip misses per 100 instructions.
    store_miss_per_100: float
    load_miss_per_100: float
    inst_miss_per_100: float
    # Critical sections.
    locks_per_1000: float
    critical_section_mean: int
    #: Probability that a cold-store burst is followed by a critical
    #: section, putting a serializing instruction right behind missing
    #: stores (the paper's store-serialize structure) without adding
    #: off-budget store misses.
    lock_after_store_miss: float
    # Store-miss structure.
    store_burst_mean: float
    store_regions: int
    store_region_bytes: int = 2048
    store_region_lines_used: int = 4
    shared_store_fraction: float = 0.10
    shared_load_fraction: float = 0.05
    # Footprints.
    hot_code_bytes: int = 24 * 1024
    hot_data_bytes: int = 128 * 1024
    cold_load_bytes: int = 32 * 1024 * 1024
    cold_code_bytes: int = 16 * 1024 * 1024
    shared_bytes: int = 1024 * 1024
    lock_pool: int = 64
    # Phase behaviour: commercial workloads alternate busy stretches (lock
    # and load-miss dense) with quieter stretches where a missing store can
    # drain under pure computation.  ``quiet_fraction`` of execution is
    # quiet; aggregate rates are preserved by scaling the busy phase up.
    # This is what produces the paper's Table 2 overlap fractions.
    quiet_fraction: float = 0.15
    phase_length: int = 8000
    quiet_lock_scale: float = 0.0
    quiet_load_scale: float = 0.2
    quiet_inst_scale: float = 0.2
    #: Fraction of hit stores that continue a sequential run (stack frames,
    #: object initialisation).  These are what 8-byte store coalescing
    #: merges, relieving store-queue pressure behind a blocked miss.
    sequential_store_fraction: float = 0.35
    # Branch behaviour.
    #: Static branch sites in the hot code.  Dynamic branches revisit this
    #: pool, giving the gshare/BTB something trainable, like the hot inner
    #: loops of real server code.
    branch_sites: int = 192
    taken_fraction: float = 0.6
    unpredictable_branch_fraction: float = 0.03
    load_dependent_branch_fraction: float = 0.15
    call_fraction: float = 0.08
    # Internal steering multipliers, adjusted by calibration.
    store_miss_scale: float = 1.0
    load_miss_scale: float = 1.0
    inst_miss_scale: float = 1.0

    def __post_init__(self) -> None:
        total = self.store_fraction + self.load_fraction + self.branch_fraction
        if not 0 < total < 1:
            raise ValueError(
                f"{self.name}: memory+branch fractions must leave room for "
                f"ALU work, got {total:.2f}"
            )
        for field_name in ("store_miss_per_100", "load_miss_per_100",
                           "inst_miss_per_100", "locks_per_1000"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{self.name}: {field_name} must be >= 0")
        if self.store_regions <= 0:
            raise ValueError(f"{self.name}: store_regions must be positive")
        if self.store_burst_mean < 1:
            raise ValueError(f"{self.name}: store bursts are at least 1 long")
        if not 0 <= self.quiet_fraction < 1:
            raise ValueError(f"{self.name}: quiet_fraction must be in [0, 1)")
        if self.phase_length <= 0:
            raise ValueError(f"{self.name}: phase_length must be positive")

    def busy_scale(self, quiet_scale: float) -> float:
        """Busy-phase multiplier that preserves the aggregate rate given the
        quiet-phase multiplier *quiet_scale*."""
        if self.quiet_fraction == 0:
            return 1.0
        return (
            (1.0 - self.quiet_fraction * quiet_scale)
            / (1.0 - self.quiet_fraction)
        )

    # -- derived probabilities ------------------------------------------------

    @property
    def store_miss_prob(self) -> float:
        """Per-store probability of *initiating* a cold-store burst.

        Divided by the mean burst length so that the overall cold-store
        rate stays on the Table 1 target regardless of clustering.
        """
        per_inst = self.store_miss_per_100 / 100.0
        return min(1.0, (
            self.store_miss_scale * per_inst
            / self.store_fraction / self.store_burst_mean
        ))

    @property
    def load_miss_prob(self) -> float:
        """Probability a generated load targets the cold (missing) stream."""
        per_inst = self.load_miss_per_100 / 100.0
        return min(1.0, self.load_miss_scale * per_inst / self.load_fraction)

    @property
    def inst_miss_prob(self) -> float:
        """Per-instruction probability of a cold-code excursion."""
        return min(1.0, self.inst_miss_scale * self.inst_miss_per_100 / 100.0)

    @property
    def store_footprint_bytes(self) -> int:
        """Private store-miss reuse footprint."""
        return self.store_regions * self.store_region_bytes

    def with_(self, **changes: Any) -> "WorkloadProfile":
        """A copy with fields replaced (sweep/calibration idiom)."""
        return replace(self, **changes)


# The four commercial workloads.  Table 1 numbers are the paper's; the
# structural knobs encode the paper's qualitative findings per workload:
# the database workload has the richest miss mix (large store bursts, heavy
# load misses -> high store MLP, Figure 4) while SPECjbb and SPECweb are
# dominated by serializing instructions (Figure 3), making their missing
# stores expensive and isolated.

DATABASE = WorkloadProfile(
    name="database",
    store_fraction=0.1009,
    load_fraction=0.24,
    branch_fraction=0.12,
    store_miss_per_100=0.36,
    load_miss_per_100=0.57,
    inst_miss_per_100=0.09,
    locks_per_1000=1.2,
    critical_section_mean=24,
    lock_after_store_miss=0.15,
    store_burst_mean=3.5,
    quiet_fraction=0.14,
    quiet_load_scale=0.08,
    quiet_inst_scale=0.08,
    sequential_store_fraction=0.60,
    store_regions=2048,
    shared_store_fraction=0.12,
    cold_load_bytes=64 * 1024 * 1024,
)

TPCW = WorkloadProfile(
    name="tpcw",
    store_fraction=0.0728,
    load_fraction=0.22,
    branch_fraction=0.13,
    store_miss_per_100=0.12,
    load_miss_per_100=0.06,
    inst_miss_per_100=0.06,
    locks_per_1000=2.2,
    critical_section_mean=18,
    lock_after_store_miss=0.70,
    store_burst_mean=1.6,
    quiet_fraction=0.16,
    store_regions=1024,
    shared_store_fraction=0.15,
)

SPECJBB = WorkloadProfile(
    name="specjbb",
    store_fraction=0.0752,
    load_fraction=0.23,
    branch_fraction=0.13,
    store_miss_per_100=0.07,
    load_miss_per_100=0.25,
    inst_miss_per_100=0.005,
    locks_per_1000=3.0,
    critical_section_mean=16,
    lock_after_store_miss=0.80,
    store_burst_mean=1.2,
    quiet_fraction=0.13,
    quiet_load_scale=0.10,
    store_regions=1024,
    shared_store_fraction=0.08,
)

SPECWEB = WorkloadProfile(
    name="specweb",
    store_fraction=0.0720,
    load_fraction=0.22,
    branch_fraction=0.14,
    store_miss_per_100=0.13,
    load_miss_per_100=0.14,
    inst_miss_per_100=0.01,
    locks_per_1000=2.6,
    critical_section_mean=20,
    lock_after_store_miss=0.75,
    store_burst_mean=1.3,
    quiet_fraction=0.30,
    store_regions=512,
    shared_store_fraction=0.10,
)

#: All four workloads, keyed by name, in the paper's presentation order.
WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (DATABASE, TPCW, SPECJBB, SPECWEB)
}
