"""Deterministic synthetic trace generation from a workload profile.

The generator emits an instruction stream with explicitly constructed
memory behaviour:

- **hot** code/data accesses revisit small resident footprints (cache hits),
- **cold loads** draw uniformly from a region much larger than the L2
  (off-chip load misses), occasionally from cross-chip shared data,
- **cold stores** draw from a pool of private 2KB regions with per-region
  line rotation — the "private data repeatedly brought into the L2,
  modified and then evicted" pattern the Store Miss Accelerator exploits —
  and cluster in bursts whose mean length sets the achievable store MLP,
- **critical sections** emit ``casa``(acquire) ... ``store``(release) pairs
  on hot lock words, optionally preceded by a missing-store burst — the
  store-before-serializer structure behind the paper's Figure 3,
- **branches** are mostly statically biased (learnable by gshare) with a
  controlled unpredictable remainder, some of which consume a just-loaded
  value (the mispredicted-branch-dependent-on-missing-load condition),
- **cold-code excursions** teleport fetch to never-seen lines at the
  instruction-miss rate.

Everything is driven by one seeded ``random.Random``; identical
(profile, seed, count) inputs produce identical traces.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..isa import Instruction, InstructionClass
from ..isa.registers import RegisterAllocator, REG_NONE
from .profiles import WorkloadProfile
from .regions import AddressMap

_LINE = 64
_PC_STEP = 4


def _build_address_map(profile: WorkloadProfile) -> AddressMap:
    space = AddressMap()
    space.add("hot_code", profile.hot_code_bytes)
    space.add("cold_code", profile.cold_code_bytes)
    space.add("hot_data", profile.hot_data_bytes)
    space.add("cold_load", profile.cold_load_bytes)
    space.add("store_pool", profile.store_footprint_bytes)
    space.add("shared", profile.shared_bytes)
    space.add("locks", max(_LINE * profile.lock_pool, _LINE))
    return space


class WorkloadGenerator:
    """Streams instructions for one workload profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self.space = _build_address_map(profile)
        self._rng = random.Random(seed)
        self._registers = RegisterAllocator(reserve=8)
        # Reserved registers: r1 = data base pointer, r2 = lock base pointer.
        self._base_reg = 1
        self._lock_base_reg = 2
        hot_code = self.space["hot_code"]
        self._pc = hot_code.base
        self._cold_pc = self.space["cold_code"].base
        self._cold_run = 0
        self._burst_remaining = 0
        self._lock_pending = False
        self._emitted = 0
        self._primed = False
        self._last_store_address: int | None = None
        self._last_dest = REG_NONE
        self._last_cold_load_dest = REG_NONE
        self._cold_load_age = 10_000
        self._call_depth = 0
        self._return_targets: List[int] = []
        # Stable branch-site pool inside the hot code: dynamic branches
        # revisit these PCs so the direction/target predictors can train.
        hot_lines = hot_code.size // _LINE
        site_step = max(1, hot_lines // max(1, profile.branch_sites))
        self._branch_sites = [
            hot_code.base + (i * site_step % hot_lines) * _LINE + 4 * (i % 16)
            for i in range(profile.branch_sites)
        ]
        # Per-region rotation cursors for the private store pool.
        self._region_cursor = [0] * profile.store_regions

    # -- public API --------------------------------------------------------

    def generate(self, count: int) -> List[Instruction]:
        """Produce exactly *count* instructions.

        The stream opens with a deterministic priming sweep over the hot
        data and lock footprints: the paper's traces were captured with the
        workloads "warmed and running in steady state", so resident
        structures must not contribute first-touch misses after a short
        warmup.  The sweep is part of the trace (and of the warmup window
        that discards it).
        """
        if count <= 0:
            raise ValueError("instruction count must be positive")
        out: List[Instruction] = []
        if not self._primed:
            self._primed = True
            out.extend(self._priming_sweep())
        base_lock_prob = self.profile.locks_per_1000 / 1000.0
        while len(out) < count:
            lock_prob = base_lock_prob * self._phase_scale(
                self.profile.quiet_lock_scale
            )
            if self._lock_pending and self._burst_remaining == 0:
                # A cold-store burst just finished: the critical section it
                # attracted follows immediately, putting the serializing
                # acquire right behind the missing stores.
                self._lock_pending = False
                out.extend(self._critical_section())
            elif self._rng.random() < lock_prob:
                out.extend(self._critical_section())
            else:
                out.append(self._one_instruction())
        del out[count:]
        return out

    def stream(self, count: int) -> Iterator[Instruction]:
        """Iterator form of :meth:`generate`."""
        return iter(self.generate(count))

    # -- phases ----------------------------------------------------------------

    def _in_quiet_phase(self) -> bool:
        profile = self.profile
        position = self._emitted % profile.phase_length
        return position < profile.quiet_fraction * profile.phase_length

    def _phase_scale(self, quiet_scale: float) -> float:
        """Rate multiplier for the current phase, aggregate-preserving."""
        if self._in_quiet_phase():
            return quiet_scale
        return self.profile.busy_scale(quiet_scale)

    # -- program counter -----------------------------------------------------

    def _next_pc(self) -> int:
        """Advance fetch, including cold-code excursions (I-misses)."""
        profile = self.profile
        self._emitted += 1
        if self._cold_run > 0:
            self._cold_run -= 1
            pc = self._cold_pc
            self._cold_pc += _PC_STEP
            if self._cold_run == 0:
                self._pc = self._hot_pc_after_jump()
                # Start the next excursion on a fresh line.
                self._cold_pc = (self._cold_pc + _LINE) & ~(_LINE - 1)
                if self._cold_pc >= self.space["cold_code"].end:
                    self._cold_pc = self.space["cold_code"].base
            return pc
        inst_miss_prob = profile.inst_miss_prob * self._phase_scale(
            profile.quiet_inst_scale
        )
        if self._rng.random() < inst_miss_prob:
            # One excursion touches exactly one never-seen 64B line.
            self._cold_run = _LINE // _PC_STEP - 1
            pc = self._cold_pc
            self._cold_pc += _PC_STEP
            return pc
        pc = self._pc
        self._pc += _PC_STEP
        hot = self.space["hot_code"]
        if self._pc >= hot.end:
            self._pc = hot.base
        return pc

    def _hot_pc_after_jump(self) -> int:
        hot = self.space["hot_code"]
        lines = hot.size // _LINE
        return hot.base + self._rng.randrange(lines) * _LINE

    # -- instruction construction ----------------------------------------------

    def _one_instruction(self) -> Instruction:
        roll = self._rng.random()
        profile = self.profile
        self._cold_load_age += 1
        if roll < profile.store_fraction:
            return self._store()
        roll -= profile.store_fraction
        if roll < profile.load_fraction:
            return self._load()
        roll -= profile.load_fraction
        if roll < profile.branch_fraction:
            return self._branch()
        return self._alu()

    def _store(self, lock_release_of: int | None = None) -> Instruction:
        profile = self.profile
        rng = self._rng
        if lock_release_of is not None:
            address = lock_release_of
        elif self._burst_remaining > 0 or rng.random() < profile.store_miss_prob:
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
            else:
                self._burst_remaining = self._burst_length() - 1
                # Quiet-phase store misses escape the lock attraction: they
                # are the ones that can fully overlap with computation.
                if (not self._in_quiet_phase()
                        and rng.random() < profile.lock_after_store_miss):
                    self._lock_pending = True
            address = self._cold_store_address()
        elif (
            self._last_store_address is not None
            and rng.random() < profile.sequential_store_fraction
        ):
            # Locality run: rewrite the same doubleword (a field update —
            # what 8-byte coalescing merges) or advance to the next one.
            step = 0 if rng.random() < 0.5 else 8
            address = self._last_store_address + step
            if not self.space["hot_data"].contains(address):
                address = self.space["hot_data"].random_address(rng)
        else:
            address = self.space["hot_data"].random_address(rng)
        if lock_release_of is None:
            self._last_store_address = address
        return Instruction(
            kind=InstructionClass.STORE,
            pc=self._next_pc(),
            address=address,
            size=8,
            srcs=(self._base_reg, self._last_dest)
            if self._last_dest != REG_NONE else (self._base_reg,),
            lock_release=lock_release_of is not None,
        )

    def _burst_length(self) -> int:
        """Geometric burst length with the profile's mean."""
        mean = self.profile.store_burst_mean
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        length = 1
        while self._rng.random() > p and length < 64:
            length += 1
        return length

    def _cold_store_address(self) -> int:
        profile = self.profile
        rng = self._rng
        if rng.random() < profile.shared_store_fraction:
            return self.space["shared"].random_line(rng)
        region_index = rng.randrange(profile.store_regions)
        cursor = self._region_cursor[region_index]
        self._region_cursor[region_index] = cursor + 1
        lines_used = max(1, min(
            profile.store_region_lines_used,
            profile.store_region_bytes // _LINE,
        ))
        line = cursor % lines_used
        return (
            self.space["store_pool"].base
            + region_index * profile.store_region_bytes
            + line * _LINE
        )

    def _load(self) -> Instruction:
        profile = self.profile
        rng = self._rng
        dest = self._registers.fresh()
        load_miss_prob = profile.load_miss_prob * self._phase_scale(
            profile.quiet_load_scale
        )
        cold = rng.random() < load_miss_prob
        if cold:
            if rng.random() < profile.shared_load_fraction:
                address = self.space["shared"].random_line(rng)
            else:
                address = self.space["cold_load"].random_line(rng)
            self._last_cold_load_dest = dest
            self._cold_load_age = 0
        else:
            address = self.space["hot_data"].random_address(rng)
        srcs = (self._base_reg,)
        # Occasional pointer chasing: the address depends on a prior load.
        if cold and self._last_dest != REG_NONE and rng.random() < 0.08:
            srcs = (self._last_dest,)
        self._last_dest = dest
        return Instruction(
            kind=InstructionClass.LOAD,
            pc=self._next_pc(),
            address=address,
            size=8,
            dest=dest,
            srcs=srcs,
        )

    def _branch(self) -> Instruction:
        profile = self.profile
        rng = self._rng
        pc = self._next_pc()
        if self.space["hot_code"].contains(pc):
            # Re-anchor to a stable site so the predictors can train; cold
            # excursion branches keep their one-off PCs.
            pc = self._branch_sites[rng.randrange(len(self._branch_sites))]
        if self._call_depth > 0 and rng.random() < 0.5 * profile.call_fraction:
            target = self._return_targets.pop()
            self._call_depth -= 1
            return Instruction(
                kind=InstructionClass.RETURN, pc=pc, taken=True, target=target
            )
        if rng.random() < profile.call_fraction and self._call_depth < 12:
            self._return_targets.append(pc + _PC_STEP)
            self._call_depth += 1
            return Instruction(
                kind=InstructionClass.CALL,
                pc=pc,
                taken=True,
                target=self._hot_pc_after_jump(),
            )
        # Conditional branch.
        srcs: tuple[int, ...] = ()
        unpredictable = rng.random() < profile.unpredictable_branch_fraction
        if (
            self._cold_load_age < 8
            and self._last_cold_load_dest != REG_NONE
            and rng.random() < profile.load_dependent_branch_fraction
        ):
            srcs = (self._last_cold_load_dest,)
            unpredictable = True  # data-dependent: the predictor can't learn it
        if unpredictable:
            taken = rng.random() < 0.5
        else:
            # Statically biased by PC: gshare learns these quickly.
            taken = (hash(pc) & 0xFF) < 256 * profile.taken_fraction
        # Stable per-PC target so the BTB can learn it.
        hot = self.space["hot_code"]
        target = hot.base + (hash(pc ^ 0x5A5A) % (hot.size // _LINE)) * _LINE
        return Instruction(
            kind=InstructionClass.BRANCH,
            pc=pc,
            taken=taken,
            target=target if taken else pc + _PC_STEP,
            srcs=srcs,
        )

    def _alu(self) -> Instruction:
        dest = self._registers.fresh()
        srcs = (
            (self._last_dest,) if self._last_dest != REG_NONE
            else (self._base_reg,)
        )
        self._last_dest = dest
        return Instruction(
            kind=InstructionClass.ALU,
            pc=self._next_pc(),
            dest=dest,
            srcs=srcs,
        )

    def _priming_sweep(self) -> List[Instruction]:
        """Touch every hot-data and lock line once (steady-state warmth)."""
        out: List[Instruction] = []
        hot = self.space["hot_data"]
        for line in range(hot.size // _LINE):
            out.append(Instruction(
                kind=InstructionClass.LOAD,
                pc=self._next_pc(),
                address=hot.base + line * _LINE,
                size=8,
                dest=self._registers.fresh(),
                srcs=(self._base_reg,),
            ))
        locks = self.space["locks"]
        for line in range(locks.size // _LINE):
            out.append(Instruction(
                kind=InstructionClass.LOAD,
                pc=self._next_pc(),
                address=locks.base + line * _LINE,
                size=8,
                dest=self._registers.fresh(),
                srcs=(self._lock_base_reg,),
            ))
        return out

    # -- critical sections ---------------------------------------------------------

    def _critical_section(self) -> List[Instruction]:
        profile = self.profile
        rng = self._rng
        out: List[Instruction] = []
        lock_address = self.space["locks"].line(
            rng.randrange(profile.lock_pool)
        )
        dest = self._registers.fresh()
        out.append(Instruction(
            kind=InstructionClass.CAS,
            pc=self._next_pc(),
            address=lock_address,
            size=8,
            dest=dest,
            srcs=(self._lock_base_reg,),
            lock_acquire=True,
        ))
        body_length = max(2, int(rng.expovariate(
            1.0 / max(1, profile.critical_section_mean)
        )))
        for _ in range(min(body_length, 128)):
            out.append(self._one_instruction())
        out.append(self._store(lock_release_of=lock_address))
        return out


def generate_trace(
    profile: WorkloadProfile, instructions: int, seed: int = 0
) -> List[Instruction]:
    """One-shot convenience wrapper."""
    return WorkloadGenerator(profile, seed).generate(instructions)
