"""Lock acquisition/release detection.

The detector reproduces the paper's "lock detection tool": it scans a TSO
trace for the canonical critical-section shape — an atomic ``casa`` to some
lock word, followed within a bounded window by a plain store to the same
address (the release) — and marks the pair with ``lock_acquire`` /
``lock_release`` flags.  Traces from our workload generators carry these
flags already; the detector exists for traces that do not (e.g. externally
produced or deliberately stripped ones) and is validated against the
generator's ground truth in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Sequence

from ..isa import Instruction, InstructionClass


@dataclass(frozen=True)
class DetectedLock:
    """Indices of one detected critical section in the trace."""

    acquire_index: int
    release_index: int
    lock_address: int

    @property
    def length(self) -> int:
        """Dynamic instructions inside the critical section."""
        return self.release_index - self.acquire_index - 1


class LockDetector:
    """Finds casa-acquire / store-release pairs in a TSO trace."""

    def __init__(self, max_critical_section: int = 256) -> None:
        if max_critical_section <= 0:
            raise ValueError("critical section window must be positive")
        self.max_critical_section = max_critical_section

    def find(self, trace: Sequence[Instruction]) -> List[DetectedLock]:
        """Return all non-overlapping critical sections, earliest first."""
        found: List[DetectedLock] = []
        i = 0
        n = len(trace)
        while i < n:
            inst = trace[i]
            if inst.kind is InstructionClass.CAS:
                release = self._find_release(trace, i)
                if release is not None:
                    found.append(DetectedLock(i, release, inst.address))
                    i = release + 1
                    continue
            i += 1
        return found

    def _find_release(
        self, trace: Sequence[Instruction], acquire: int
    ) -> int | None:
        lock_address = trace[acquire].address
        end = min(len(trace), acquire + 1 + self.max_critical_section)
        for j in range(acquire + 1, end):
            inst = trace[j]
            if inst.kind is InstructionClass.STORE and inst.address == lock_address:
                return j
            if inst.kind is InstructionClass.CAS and inst.address == lock_address:
                return None  # re-acquire before release: not a simple section
        return None


def detect_locks(
    trace: Sequence[Instruction], max_critical_section: int = 256
) -> List[Instruction]:
    """Return a copy of *trace* with lock acquire/release flags set.

    Existing flags are preserved; detection only adds flags for sections the
    heuristic finds.
    """
    detector = LockDetector(max_critical_section)
    marked = list(trace)
    for lock in detector.find(trace):
        acquire = marked[lock.acquire_index]
        release = marked[lock.release_index]
        if not acquire.lock_acquire:
            marked[lock.acquire_index] = dc_replace(acquire, lock_acquire=True)
        if not release.lock_release:
            marked[lock.release_index] = dc_replace(release, lock_release=True)
    return marked
