"""Speculative Lock Elision as a trace transformation.

SLE (Rajwar & Goodman) executes critical sections without acquiring the
lock: the acquire is issued as an ordinary load of the lock word and the
release is elided entirely.  The paper applies SLE to *store* performance:
eliding the acquire removes the serializing ``casa`` (PC) or the
``stwcx``/``isync`` pair (WC), so missing stores ahead of the critical
section no longer have to drain, and eliding the release removes a store.

As in the paper's experiments, every elision is assumed to succeed (no data
conflicts), so the transformation is unconditional on annotated lock pairs.
Non-lock atomics and barriers are untouched.
"""

from __future__ import annotations

from typing import List, Sequence

from ..isa import Instruction, InstructionClass


def apply_sle(trace: Sequence[Instruction]) -> List[Instruction]:
    """Return a copy of *trace* with annotated lock pairs elided.

    Works on both TSO and WC-rewritten traces:

    - TSO: ``casa`` (acquire) -> plain load of the lock word;
      release store -> NOP.
    - WC: ``stwcx`` (acquire) -> NOP, its guarding ``isync`` -> NOP, the
      preceding ``lwarx`` already behaves as the required plain load;
      ``lwsync`` + release store -> NOP.
    """
    out: List[Instruction] = []
    elide_next_isync = False
    elide_next_lwsync_release = False
    for inst in trace:
        kind = inst.kind
        if kind is InstructionClass.CAS and inst.lock_acquire:
            out.append(
                Instruction(
                    kind=InstructionClass.LOAD,
                    pc=inst.pc,
                    address=inst.address,
                    size=inst.size or 8,
                    dest=inst.dest,
                    srcs=inst.srcs,
                )
            )
            continue
        if kind is InstructionClass.STORE_COND and inst.lock_acquire:
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            elide_next_isync = True
            continue
        if kind is InstructionClass.ISYNC and elide_next_isync:
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            elide_next_isync = False
            continue
        if kind is InstructionClass.LWSYNC:
            # Only elide the lwsync that guards a lock release; peek is not
            # possible in a streaming pass, so mark and fix on the release.
            out.append(inst)
            elide_next_lwsync_release = True
            continue
        if kind is InstructionClass.STORE and inst.lock_release:
            if elide_next_lwsync_release and out and (
                out[-1].kind is InstructionClass.LWSYNC
            ):
                out[-1] = Instruction(kind=InstructionClass.NOP, pc=out[-1].pc)
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            elide_next_lwsync_release = False
            continue
        if kind is not InstructionClass.LWSYNC:
            elide_next_lwsync_release = False
        out.append(inst)
    return out
