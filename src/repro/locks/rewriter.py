"""Rewrite TSO lock idioms into their weak-consistency equivalents.

Following the paper's Examples 5 and 6:

TSO (processor consistency)::

    casa   [lock]      ; atomic acquire — serializing, drains SB/SQ
    ...critical section...
    store  [lock]      ; release

PowerPC (weak consistency)::

    lwarx  [lock]      ; load-locked
    stwcx  [lock]      ; store-conditional
    isync              ; acquisition complete before body executes
    ...critical section...
    lwsync             ; body performed before release
    store  [lock]      ; release

Any free-standing ``membar`` is mapped to ``lwsync`` (an ordering barrier
that does not drain the store queue).  The rewrite operates on traces whose
lock roles are annotated (by the generator or by
:func:`repro.locks.detector.detect_locks`).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Sequence

from ..isa import Instruction, InstructionClass
from ..isa.registers import REG_NONE


def _acquire_sequence(casa: Instruction) -> List[Instruction]:
    lwarx = Instruction(
        kind=InstructionClass.LOAD_LOCKED,
        pc=casa.pc,
        address=casa.address,
        size=casa.size or 8,
        dest=casa.dest,
        srcs=casa.srcs,
        lock_acquire=False,
    )
    stwcx = Instruction(
        kind=InstructionClass.STORE_COND,
        pc=casa.pc + 4,
        address=casa.address,
        size=casa.size or 8,
        dest=REG_NONE,
        srcs=casa.srcs,
        lock_acquire=True,
    )
    isync = Instruction(kind=InstructionClass.ISYNC, pc=casa.pc + 8)
    return [lwarx, stwcx, isync]


def _release_sequence(store: Instruction) -> List[Instruction]:
    lwsync = Instruction(kind=InstructionClass.LWSYNC, pc=store.pc)
    release = dc_replace(store, pc=store.pc + 4)
    return [lwsync, release]


def rewrite_pc_to_wc(trace: Sequence[Instruction]) -> List[Instruction]:
    """Return a WC-idiom version of an annotated TSO trace.

    - ``casa`` flagged ``lock_acquire`` becomes lwarx/stwcx/isync,
    - a store flagged ``lock_release`` gains a preceding lwsync,
    - other ``casa`` (non-lock atomics) become lwarx/stwcx pairs without the
      isync (WC programs need no implicit ordering there),
    - ``membar`` becomes ``lwsync``.
    """
    out: List[Instruction] = []
    for inst in trace:
        if inst.kind is InstructionClass.CAS:
            sequence = _acquire_sequence(inst)
            if not inst.lock_acquire:
                sequence = sequence[:2]  # plain atomic: no isync
                sequence[1] = dc_replace(sequence[1], lock_acquire=False)
            out.extend(sequence)
        elif inst.kind is InstructionClass.STORE and inst.lock_release:
            out.extend(_release_sequence(inst))
        elif inst.kind is InstructionClass.MEMBAR:
            out.append(Instruction(kind=InstructionClass.LWSYNC, pc=inst.pc))
        else:
            out.append(inst)
    return out
