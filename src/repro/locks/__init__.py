"""Lock detection, consistency-model rewriting and Speculative Lock Elision.

The paper's traces were captured on SPARC TSO binaries whose critical
sections use ``casa`` for lock acquire and a plain store for lock release.
To evaluate weak consistency, the authors built a lock detection tool that
finds those sequences and replaces them with the PowerPC
``lwarx``/``stwcx``/``isync`` ... ``lwsync``/store idiom.  This package
reimplements that tool chain:

- :mod:`~repro.locks.detector` finds acquire/release pairs in a raw trace,
- :mod:`~repro.locks.rewriter` converts TSO lock idioms to WC idioms,
- :mod:`~repro.locks.elision` applies Speculative Lock Elision (acquire
  becomes an ordinary load, release becomes a NOP; all elisions are assumed
  to succeed, as in the paper's experiments).
"""

from .detector import LockDetector, detect_locks
from .elision import apply_sle
from .rewriter import rewrite_pc_to_wc
from .transactional import apply_transactional_memory

__all__ = [
    "LockDetector",
    "apply_sle",
    "apply_transactional_memory",
    "detect_locks",
    "rewrite_pc_to_wc",
]
