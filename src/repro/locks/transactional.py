"""Transactional-memory execution of critical sections.

The paper (Section 3.3.4): "A related technique, transactional memory,
achieves similar benefits as SLE but requires software as well as hardware
support."  With software support the lock word disappears entirely — the
critical section runs as a hardware transaction with no acquire access and
no release store.  Compared to SLE (which still issues the acquire as an
ordinary load), TM removes even that load.

As with the paper's SLE experiments, all transactions are assumed to
succeed (no data conflicts, no capacity aborts), so the transformation is
unconditional on annotated lock pairs.
"""

from __future__ import annotations

from typing import List, Sequence

from ..isa import Instruction, InstructionClass


def apply_transactional_memory(
    trace: Sequence[Instruction],
) -> List[Instruction]:
    """Return a copy of *trace* with annotated lock pairs transacted away.

    Works on both TSO and WC-rewritten traces: the acquire (``casa`` or the
    ``lwarx``/``stwcx``/``isync`` triple) and the release (``lwsync`` +
    store) become NOPs; the critical-section body is untouched (a real
    implementation would track its read/write sets, which costs nothing in
    the epoch model under the always-succeed assumption).
    """
    out: List[Instruction] = []
    elide_next_isync = False
    for inst in trace:
        kind = inst.kind
        if kind is InstructionClass.CAS and inst.lock_acquire:
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            continue
        if kind is InstructionClass.LOAD_LOCKED:
            # Only elide lwarx that feeds a lock acquire; peek ahead is not
            # possible streaming, so tentatively keep and fix on stwcx.
            out.append(inst)
            continue
        if kind is InstructionClass.STORE_COND and inst.lock_acquire:
            if out and out[-1].kind is InstructionClass.LOAD_LOCKED:
                out[-1] = Instruction(kind=InstructionClass.NOP,
                                      pc=out[-1].pc)
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            elide_next_isync = True
            continue
        if kind is InstructionClass.ISYNC and elide_next_isync:
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            elide_next_isync = False
            continue
        if kind is InstructionClass.STORE and inst.lock_release:
            if out and out[-1].kind is InstructionClass.LWSYNC:
                out[-1] = Instruction(kind=InstructionClass.NOP,
                                      pc=out[-1].pc)
            out.append(Instruction(kind=InstructionClass.NOP, pc=inst.pc))
            continue
        out.append(inst)
    return out
