"""Thread-scheduling policies for the SMT multi-context simulator.

Each simulated slot, exactly one runnable hardware context is granted the
pipeline for one epoch step; every other live context *absorbs* the slot
(its epoch clock advances, so outstanding misses and deferred dependence
chains mature "in the shadow" of the granted context's execution).  The
scheduler decides who gets the grant — the fetch-policy decision of a real
SMT front end collapsed to epoch granularity.

Three policies ship, mirroring the MLP-aware-scheduling literature the
ROADMAP cites:

- ``round_robin``: strict rotation over runnable contexts — the neutral
  baseline every comparison is anchored to.
- ``icount``: grant the context with the fewest fetched instructions
  (ICOUNT's "favor the least-represented thread" heuristic at epoch
  granularity); balances progress, starves nobody.
- ``mlp``: MLP-aware — deprioritize contexts currently draining
  store-miss epochs (store unit still holds work, or the last stepped
  epoch closed on store misses).  Their misses complete during absorbed
  slots anyway, so the grant goes to a compute-ready context that will
  turn the slot into trace progress.

All policies are deterministic: ties break on the context id, and no
policy consults wall-clock or randomness, so a seeded run reproduces
slot-for-slot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type, TYPE_CHECKING

if TYPE_CHECKING:
    from .simulator import SmtContext


class Scheduler:
    """One scheduling policy instance, stateful across a single SMT run.

    Subclasses implement :meth:`pick`; the simulator calls it once per
    slot with the runnable contexts (never empty) and the slot index.
    State (e.g. the round-robin cursor) lives on the instance — the
    simulator constructs a fresh scheduler per run, so runs never share
    policy state.
    """

    name: str = ""

    def pick(
        self, runnable: Sequence["SmtContext"], slot: int
    ) -> "SmtContext":
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Strict rotation: the next runnable context at or after the cursor."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self, runnable: Sequence["SmtContext"], slot: int
    ) -> "SmtContext":
        chosen = min(
            runnable,
            key=lambda c: ((c.cid - self._next) % _modulus(runnable), c.cid),
        )
        self._next = chosen.cid + 1
        return chosen


def _modulus(runnable: Sequence["SmtContext"]) -> int:
    """A rotation modulus covering every context id present."""
    return max(c.cid for c in runnable) + 1


class IcountScheduler(Scheduler):
    """Fewest fetched instructions first (ICOUNT at epoch granularity)."""

    name = "icount"

    def pick(
        self, runnable: Sequence["SmtContext"], slot: int
    ) -> "SmtContext":
        return min(runnable, key=lambda c: (c.state.pos, c.cid))


class MlpScheduler(Scheduler):
    """MLP-aware: don't grant the pipeline to a context draining
    store-miss epochs — absorption completes those misses for free.

    Two-level priority, per the MLP-aware fetch policies the ROADMAP
    cites:

    1. Contexts whose last stepped epoch closed on store misses are
       deprioritized outright (they are mid-burst; a grant would likely
       buy another low-progress store epoch).
    2. Within a tier, the context with the *lowest store-miss
       intensity* — the fraction of its stepped epochs that closed on
       store misses — wins, so memory-bound threads systematically
       yield the pipeline to compute-bound ones.  That is what moves
       STP/ANTT versus round-robin; the fairness metric records the
       price.

    Ties (e.g. replicated-workload mixes) fall back to fewest slots
    granted, then the context id, so the policy degrades to fair
    rotation when the MLP signal carries no information and no context
    ever starves (a deprioritized context still runs whenever the
    others drain or finish, and its misses mature while it waits).
    """

    name = "mlp"

    def pick(
        self, runnable: Sequence["SmtContext"], slot: int
    ) -> "SmtContext":
        preferred = [c for c in runnable if not c.draining()]
        pool = preferred if preferred else runnable
        return min(
            pool,
            key=lambda c: (c.store_intensity(), c.slots_granted, c.cid),
        )


SCHEDULERS: Dict[str, Type[Scheduler]] = {
    cls.name: cls
    for cls in (RoundRobinScheduler, IcountScheduler, MlpScheduler)
}

#: The policy used when ``contexts >= 2`` and none was requested.
DEFAULT_SCHEDULER = "round_robin"


def valid_schedulers() -> List[str]:
    """The registered policy names, sorted for stable error messages."""
    return sorted(SCHEDULERS)


def resolve_scheduler(name: str) -> Scheduler:
    """A fresh scheduler instance for *name*.

    Unknown names raise ``ValueError`` listing the valid policies —
    the same actionable-error style as ``valid_axes()`` — so a CLI or
    wire-protocol typo comes back with the fix in the message.
    """
    key = (name or DEFAULT_SCHEDULER).lower()
    try:
        return SCHEDULERS[key]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; valid schedulers: "
            f"{', '.join(valid_schedulers())}"
        ) from None
