"""The SMT multi-context simulation driver.

Execution model — one core, N hardware contexts, epoch-granular slots:

1. Every context owns its full architectural state (its own
   :class:`~repro.core.window.WindowState`, store unit, scoreboard and
   trace cursor) built by :meth:`MlpSimulator.new_state`.
2. Each *slot*, the scheduler grants one runnable context an epoch step
   (:meth:`MlpSimulator.step_epoch` — exactly one iteration of the
   single-context run loop).  Every other live context *absorbs* the
   slot: its epoch clock advances without a window scan, so outstanding
   store misses and deferred load chains mature in the shadow of the
   granted context's execution.  Which context is granted therefore
   genuinely changes per-context epoch counts and turnaround — the lever
   MLP-aware scheduling pulls.
3. Contexts share the SMAC and the lock lines
   (:mod:`repro.smt.sharing`): a store miss from one context invalidates
   the others' trained SMAC entries for that granule, and a contended
   lock acquire costs the acquirer its next grant (bounded spin).

With one context the slot loop degenerates to the single-context run
loop verbatim — no sharing structures attach, the scheduler has a
single choice and the finalization path mirrors
:meth:`MlpSimulator.run`'s tail — which is what keeps ``contexts=1``
bit-identical to the reference backend under every policy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, TYPE_CHECKING

from ..core.mlpsim import MlpSimulator
from ..core.window import EpochAccountant, WindowState
from ..errors import SimulationError
from ..memory.annotate import AnnotatedTrace
from ..workloads.mixes import resolve_mix
from .results import SmtContextResult, SmtResult
from .schedulers import Scheduler, resolve_scheduler
from .sharing import SharedLockTable, SharedSmac, SharedSmacObserver

if TYPE_CHECKING:
    from ..config import MemoryConfig, SimulationConfig
    from ..harness.experiment import SharingSettings, Workbench


@dataclass
class SmtContext:
    """One hardware context's live state inside the slot loop."""

    cid: int
    workload: str
    trace: AnnotatedTrace
    simulator: MlpSimulator
    state: WindowState
    accountant: EpochAccountant
    done: bool = False
    slots_granted: int = 0
    slots_absorbed: int = 0
    spin_slots: int = 0
    #: First slot at which this context may be granted again (lock spin).
    stall_until: int = 0
    #: Store misses the last stepped epoch closed with (draining signal).
    last_store_misses: int = 0
    #: Stepped epochs that closed on store misses (intensity numerator).
    store_epochs: int = 0
    finished_slot: int = -1
    result: object = field(default=None, repr=False)

    def draining(self) -> bool:
        """Is this context in the middle of a store-miss drain?

        True while the most recent epoch this context stepped closed on
        store misses — the burst state the MLP-aware policy
        deprioritizes, because those misses complete during absorbed
        slots anyway and a grant would likely buy another low-progress
        burst epoch.  (Store-buffer occupancy alone is deliberately not
        a signal: a non-empty store buffer is the steady state of every
        store-bearing workload, not a drain.)
        """
        return self.last_store_misses > 0

    def store_intensity(self) -> float:
        """Fraction of this context's stepped epochs that closed on
        store misses — the MLP scheduler's persistent priority signal."""
        if self.slots_granted == 0:
            return 0.0
        return self.store_epochs / self.slots_granted


class SmtSimulator:
    """Runs N prepared contexts to completion under one scheduler."""

    def __init__(
        self,
        contexts: List[SmtContext],
        scheduler: Scheduler,
        *,
        spin_penalty: int = 1,
        share: bool = True,
    ) -> None:
        if not contexts:
            raise ValueError("an SMT run needs at least one context")
        self.contexts = contexts
        self.scheduler = scheduler
        self.smac = SharedSmac()
        self.locks = SharedLockTable(spin_penalty=spin_penalty)
        # Sharing only exists between contexts: a single context keeps
        # the pristine single-context window state (bit-identity).
        if share and len(contexts) > 1:
            for context in contexts:
                context.state.observer = SharedSmacObserver(
                    self.smac, context.cid
                )
                context.state.smac_probe = partial(
                    self.smac.probe, context.cid
                )

    # ------------------------------------------------------------- loop --

    def run(self) -> SmtResult:
        contexts = self.contexts
        live = [c for c in contexts if not c.done]
        # Generous bound: every context alone finishes in at most one
        # slot per trace position plus its stagnation allowance.
        max_slots = sum(len(c.trace) + 1024 for c in contexts) * 2
        slot = 0
        while live:
            runnable = [c for c in live if c.stall_until <= slot]
            granted: Optional[SmtContext] = None
            if runnable:
                granted = self.scheduler.pick(runnable, slot)
            for context in live:
                if context is granted:
                    self._step(context, slot)
                else:
                    context.state.advance_epoch()
                    context.slots_absorbed += 1
            slot += 1
            if granted is not None and granted.done:
                live = [c for c in live if not c.done]
            if slot > max_slots:
                raise SimulationError(
                    f"SMT run exceeded {max_slots} slots with "
                    f"{len(live)} context(s) unfinished; scheduler "
                    f"{self.scheduler.name!r} is not making progress"
                )
        return self._collect(slot)

    def _step(self, context: SmtContext, slot: int) -> None:
        records = context.accountant.result.epochs
        before = len(records)
        done, _ = context.simulator.step_epoch(
            context.trace, context.state, context.accountant
        )
        context.slots_granted += 1
        context.last_store_misses = (
            records[-1].store_misses if len(records) > before else 0
        )
        if context.last_store_misses > 0:
            context.store_epochs += 1
        if len(self.contexts) > 1:
            self._scan_locks(context, slot)
        if done:
            # Mirror MlpSimulator.run's tail: final drain then finalize.
            context.state.store_unit.pump(context.state.cur + 1)
            context.result = context.accountant.finalize(
                context.state.store_unit
            )
            context.done = True
            context.finished_slot = slot
            self.locks.drop_context(context.cid)

    def _scan_locks(self, context: SmtContext, slot: int) -> None:
        """Charge lock contention for the epoch span just stepped.

        Every instruction retires inside exactly one epoch span
        ``[epoch_start_pos, pos)`` (a stalled serializer or rejected
        store stays at ``pos`` and lands in a later span), so each
        acquire/release is accounted once.
        """
        trace = context.trace
        state = context.state
        cid = context.cid
        locks = self.locks
        for index in range(state.epoch_start_pos, state.pos):
            inst = trace[index][0]
            if inst.lock_acquire:
                spin = locks.acquire(cid, inst.address)
                if spin:
                    context.spin_slots += spin
                    context.stall_until = slot + 1 + spin
            elif inst.lock_release:
                locks.release(cid, inst.address)

    # ---------------------------------------------------------- results --

    def _collect(self, total_slots: int) -> SmtResult:
        per_context = []
        for context in self.contexts:
            baseline = baseline_slots(context.simulator, context.trace)
            per_context.append(SmtContextResult(
                cid=context.cid,
                workload=context.workload,
                result=context.result,
                slots_granted=context.slots_granted,
                slots_absorbed=context.slots_absorbed,
                spin_slots=context.spin_slots,
                turnaround_slots=context.finished_slot + 1,
                baseline_slots=baseline,
            ))
        return SmtResult(
            scheduler=self.scheduler.name,
            contexts=tuple(per_context),
            total_slots=total_slots,
            smac_invalidations=self.smac.invalidations,
            lock_contentions=self.locks.contentions,
        )


def baseline_slots(simulator: MlpSimulator, trace: AnnotatedTrace) -> int:
    """Slots (epoch steps) the trace needs running alone on this core —
    the exact standalone turnaround that normalizes STP/ANTT."""
    state, accountant = simulator.new_state(trace, observer=None)
    slots = 0
    while True:
        done, _ = simulator.step_epoch(trace, state, accountant)
        slots += 1
        if done:
            return slots


# ------------------------------------------------------------- driver --


def run_smt(
    bench: "Workbench",
    workload: str,
    *,
    contexts: int,
    scheduler: str = "",
    variant: str = "pc",
    memory_config: "MemoryConfig | None" = None,
    sharing: "SharingSettings | None" = None,
    tag: str = "",
    config: "SimulationConfig | None" = None,
    spin_penalty: int = 1,
    **core_changes,
) -> SmtResult:
    """Annotate per-context traces (cached) and run one SMT simulation.

    *workload* is a mix spec (see :mod:`repro.workloads.mixes`); context
    *i* runs its component with seed ``settings.seed + i`` through a
    derived workbench sharing the artifact cache, so context 0's trace
    is byte-identical to the single-context pipeline's and every other
    context's trace is cached across runs and schedulers.
    """
    from ..harness.experiment import Workbench

    assignments = resolve_mix(workload, contexts)
    policy = resolve_scheduler(scheduler)
    prepared: List[SmtContext] = []
    for cid, name in enumerate(assignments):
        if cid == 0:
            context_bench = bench
        else:
            context_bench = Workbench(
                dataclasses.replace(
                    bench.settings, seed=bench.settings.seed + cid
                ),
                artifacts=bench.artifacts,
            )
        trace = context_bench.annotated(
            name, variant, memory_config, sharing, tag
        )
        resolved = context_bench.resolved_config(
            name, variant, config, **core_changes
        )
        simulator = MlpSimulator(resolved)
        state, accountant = simulator.new_state(trace)
        prepared.append(SmtContext(
            cid=cid,
            workload=name,
            trace=trace,
            simulator=simulator,
            state=state,
            accountant=accountant,
        ))
    return SmtSimulator(
        prepared, policy, spin_penalty=spin_penalty,
    ).run()
