"""Cross-context sharing state for the SMT simulator.

Two structures model what N hardware contexts on one core actually
share:

- :class:`SharedSmac` — the Store Miss Accelerator is a per-core
  structure, so a context's trained entry for a granule goes stale the
  moment another context's store miss dirties that granule.  The window
  scan consults :meth:`SharedSmac.probe` (via the ``WindowState.smac_probe``
  hook) before honouring an annotated SMAC hit; a stale entry demotes the
  hit to a plain store miss and counts an invalidation.
- :class:`SharedLockTable` — lock words live in shared lines, so an
  acquire by one context while another holds the lock costs a bounded,
  deterministic spin (the acquiring context loses its next scheduling
  grant).  Ownership always transfers on acquire, so the model cannot
  deadlock, and traces with elided locks (the SLE variants) carry no
  acquire/release flags and therefore never contend — the paper's SLE
  benefit, reproduced at the scheduling layer.

Contexts share one physical address space: mixes that replicate a
workload model threads of a single application (true sharing on its
store pool and locks), while heterogeneous mixes model consolidation,
where overlap is incidental but still deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.store_unit import StoreEntry
from ..core.window import WindowObserver

#: Lock words are line-granular: the generator spaces locks a cache line
#: apart, so the line address identifies the lock.
_LOCK_LINE = 64


class SharedSmac:
    """Granule-level last-writer directory backing cross-context SMAC
    invalidation."""

    __slots__ = ("last_writer", "invalidations")

    def __init__(self) -> None:
        self.last_writer: Dict[int, int] = {}
        self.invalidations = 0

    def note_store(self, cid: int, granule: int) -> None:
        """Context *cid* sent a store miss for *granule* off chip."""
        self.last_writer[granule] = cid

    def probe(self, cid: int, granule: int) -> bool:
        """Is context *cid*'s trained SMAC entry for *granule* still good?

        ``True`` keeps the annotated hit (nobody else wrote the granule
        since); ``False`` demotes it to a plain miss and counts the
        invalidation.
        """
        owner = self.last_writer.get(granule)
        if owner is None or owner == cid:
            return True
        self.invalidations += 1
        return False


class SharedSmacObserver(WindowObserver):
    """Feeds one context's store-miss stream into the shared directory."""

    def __init__(self, shared: SharedSmac, cid: int) -> None:
        self.shared = shared
        self.cid = cid

    def on_store_event(self, entry: StoreEntry, pos: int, epoch: int) -> None:
        self.shared.note_store(self.cid, entry.granule)


class SharedLockTable:
    """Deterministic bounded-spin lock ownership across contexts."""

    __slots__ = ("owner", "contentions", "spin_penalty")

    def __init__(self, spin_penalty: int = 1) -> None:
        if spin_penalty < 1:
            raise ValueError("spin penalty must be at least one slot")
        self.owner: Dict[int, int] = {}
        self.contentions = 0
        self.spin_penalty = spin_penalty

    def acquire(self, cid: int, address: int) -> int:
        """Record an acquire; return the spin slots it costs (0 or the
        penalty).  Ownership transfers unconditionally — the spin is
        bounded, so the model cannot wedge."""
        line = address // _LOCK_LINE
        holder: Optional[int] = self.owner.get(line)
        self.owner[line] = cid
        if holder is None or holder == cid:
            return 0
        self.contentions += 1
        return self.spin_penalty

    def release(self, cid: int, address: int) -> None:
        line = address // _LOCK_LINE
        if self.owner.get(line) == cid:
            del self.owner[line]

    def drop_context(self, cid: int) -> None:
        """A context finished: its held locks free immediately."""
        self.owner = {
            line: holder for line, holder in self.owner.items()
            if holder != cid
        }
