"""SMT multi-context simulation: N hardware contexts, one core.

Entry points:

- :func:`run_smt` — the driver behind ``api.run(..., contexts=N)``.
- :data:`SCHEDULERS` / :func:`resolve_scheduler` /
  :func:`valid_schedulers` — the pluggable scheduling policies.
- :class:`SmtResult` — per-context breakdown plus STP/ANTT/fairness.
"""

from .results import SmtContextResult, SmtResult
from .schedulers import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    IcountScheduler,
    MlpScheduler,
    RoundRobinScheduler,
    Scheduler,
    resolve_scheduler,
    valid_schedulers,
)
from .sharing import SharedLockTable, SharedSmac, SharedSmacObserver
from .simulator import SmtContext, SmtSimulator, baseline_slots, run_smt

__all__ = [
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
    "IcountScheduler",
    "MlpScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SharedLockTable",
    "SharedSmac",
    "SharedSmacObserver",
    "SmtContext",
    "SmtContextResult",
    "SmtResult",
    "SmtSimulator",
    "baseline_slots",
    "resolve_scheduler",
    "run_smt",
    "valid_schedulers",
]
