"""Per-context and aggregate results of one SMT multi-context run.

:class:`SmtResult` is shaped to drop into every consumer a
:class:`~repro.core.results.SimulationResult` already has: the headline
aggregate properties (``epi_per_1000``, ``mlp``, ``store_mlp``,
``store_overlap_fraction``, ``store_bandwidth_overhead``) carry the same
names and units, so sweep records, tune objectives and the CLI summary
work unchanged on multi-context runs.  On top it adds the multiprogram
metrics the scheduling literature compares policies by:

- **STP** (system throughput, a.k.a. weighted speedup):
  ``sum_i(baseline_slots_i / turnaround_slots_i)`` — slots each context
  would need alone over slots it took under sharing; N contexts with no
  interference score N.
- **ANTT** (average normalized turnaround time):
  ``mean_i(turnaround_slots_i / baseline_slots_i)`` — lower is better,
  1.0 is interference-free.
- **fairness**: ``min_i(NTT_i) / max_i(NTT_i)`` — 1.0 when every context
  is slowed equally, approaching 0 as one context is starved.

Baselines come from standalone single-context runs of the same traces
(computed by the simulator driver), so the normalization is exact, not
modeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.results import SimulationResult
from ..engine import serialize


@dataclass(frozen=True)
class SmtContextResult:
    """One hardware context's measurements within an SMT run."""

    cid: int
    workload: str
    result: SimulationResult
    #: Slots where this context owned the pipeline for an epoch step.
    slots_granted: int
    #: Slots absorbed while another context ran (misses matured for free).
    slots_absorbed: int
    #: Slots lost spinning on locks held by other contexts.
    spin_slots: int
    #: Slot (1-based count) at which this context finished its trace.
    turnaround_slots: int
    #: Slots the same trace needs running alone on this core.
    baseline_slots: int

    @property
    def epi_per_1000(self) -> float:
        return self.result.epi_per_1000

    @property
    def normalized_turnaround(self) -> float:
        """NTT: turnaround under sharing over standalone turnaround."""
        if self.baseline_slots == 0:
            return 0.0
        return self.turnaround_slots / self.baseline_slots


@dataclass(frozen=True)
class SmtResult:
    """Everything one N-context run measured."""

    scheduler: str
    contexts: Tuple[SmtContextResult, ...]
    #: Slots until the last context finished (the run's makespan).
    total_slots: int
    #: Cross-context SMAC demotions (stale trained entries).
    smac_invalidations: int
    #: Contended lock acquires across contexts.
    lock_contentions: int

    # -- SimulationResult-compatible aggregates ---------------------------

    @property
    def instructions(self) -> int:
        return sum(c.result.instructions for c in self.contexts)

    @property
    def epoch_count(self) -> int:
        return sum(c.result.epoch_count for c in self.contexts)

    @property
    def total_misses(self) -> int:
        return sum(c.result.total_misses for c in self.contexts)

    @property
    def epi_per_1000(self) -> float:
        insts = self.instructions
        if insts == 0:
            return 0.0
        return 1000.0 * self.epoch_count / insts

    @property
    def mlp(self) -> float:
        epochs = self.epoch_count
        if epochs == 0:
            return 0.0
        return self.total_misses / epochs

    @property
    def sb_occupancy_hwm(self) -> int:
        """Highest store-buffer high-water mark any context reached."""
        return max(
            (c.result.sb_occupancy_hwm for c in self.contexts), default=0,
        )

    @property
    def sq_occupancy_hwm(self) -> int:
        """Highest store-queue high-water mark any context reached."""
        return max(
            (c.result.sq_occupancy_hwm for c in self.contexts), default=0,
        )

    def termination_histogram(self):
        """Merged per-context epoch termination counts (telemetry hook)."""
        merged: dict = {}
        for context in self.contexts:
            for cond, count in context.result.termination_histogram().items():
                merged[cond] = merged.get(cond, 0) + count
        return merged

    @property
    def store_mlp(self) -> float:
        store_epochs = misses = 0
        for context in self.contexts:
            for epoch in context.result.epochs:
                if epoch.store_misses > 0:
                    store_epochs += 1
                    misses += epoch.store_misses
        if store_epochs == 0:
            return 0.0
        return misses / store_epochs

    @property
    def store_overlap_fraction(self) -> float:
        overlapped = sum(
            c.result.fully_overlapped_stores for c in self.contexts
        )
        total = overlapped + sum(
            c.result.store_miss_count + c.result.accelerated_stores
            for c in self.contexts
        )
        if total == 0:
            return 0.0
        return overlapped / total

    @property
    def store_bandwidth_overhead(self) -> float:
        committed = sum(c.result.stores_committed for c in self.contexts)
        if committed == 0:
            return 0.0
        prefetches = sum(
            c.result.store_prefetch_requests for c in self.contexts
        )
        return prefetches / committed

    # -- multiprogram metrics ---------------------------------------------

    @property
    def stp(self) -> float:
        """System throughput (weighted speedup); N = no interference."""
        return sum(
            c.baseline_slots / c.turnaround_slots
            for c in self.contexts if c.turnaround_slots > 0
        )

    @property
    def antt(self) -> float:
        """Average normalized turnaround time; 1.0 = no interference."""
        if not self.contexts:
            return 0.0
        return sum(
            c.normalized_turnaround for c in self.contexts
        ) / len(self.contexts)

    @property
    def fairness(self) -> float:
        """min/max of per-context normalized turnaround, in (0, 1]."""
        ntts = [c.normalized_turnaround for c in self.contexts if c.baseline_slots]
        if not ntts:
            return 0.0
        worst = max(ntts)
        if worst == 0:
            return 0.0
        return min(ntts) / worst

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        """Aggregate digest plus one line per context."""
        lines = [
            f"contexts={len(self.contexts)} scheduler={self.scheduler} "
            f"slots={self.total_slots} "
            f"(EPI/1000={self.epi_per_1000:.3f}, STP={self.stp:.3f}, "
            f"ANTT={self.antt:.3f}, fairness={self.fairness:.3f}, "
            f"smac_inval={self.smac_invalidations}, "
            f"lock_contention={self.lock_contentions})"
        ]
        for c in self.contexts:
            lines.append(
                f"  ctx{c.cid} {c.workload}: "
                f"EPI/1000={c.epi_per_1000:.3f} "
                f"turnaround={c.turnaround_slots} "
                f"(baseline={c.baseline_slots}, "
                f"NTT={c.normalized_turnaround:.3f}, "
                f"granted={c.slots_granted}, spin={c.spin_slots})"
            )
        return "\n".join(lines)


serialize.register(SmtContextResult, SmtResult)
