"""Stochastic remote-access generator for cross-chip coherence.

Each remote node issues writes (request-to-own) and reads into the workload's
shared region at a configured per-1000-instruction rate.  The process is
deterministic given its seed.  Remote traffic scales linearly with the number
of remote nodes, which is what drives Figure 6's 2-node vs 4-node contrast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class RemoteAccess:
    """One coherence event from another chip."""

    address: int
    is_write: bool


class SharingModel:
    """Generates remote accesses into a shared address region.

    Parameters
    ----------
    shared_base, shared_bytes:
        The address region that other chips read and write.
    write_rate_per_1000:
        Remote *writes* per 1000 local instructions **per remote node**.
    read_rate_per_1000:
        Remote reads per 1000 local instructions per remote node.
    remote_nodes:
        Number of other chips in the system (``system.nodes - 1``).
    line_bytes:
        Coherence granularity.
    """

    def __init__(
        self,
        shared_base: int,
        shared_bytes: int,
        write_rate_per_1000: float,
        read_rate_per_1000: float = 0.0,
        remote_nodes: int = 1,
        line_bytes: int = 64,
        seed: int = 0,
    ) -> None:
        if shared_bytes <= 0:
            raise ValueError("shared region must be non-empty")
        if write_rate_per_1000 < 0 or read_rate_per_1000 < 0:
            raise ValueError("rates must be non-negative")
        if remote_nodes < 0:
            raise ValueError("remote node count must be non-negative")
        self.shared_base = shared_base
        self.shared_bytes = shared_bytes
        self.remote_nodes = remote_nodes
        self.line_bytes = line_bytes
        self._write_prob = write_rate_per_1000 * remote_nodes / 1000.0
        self._read_prob = read_rate_per_1000 * remote_nodes / 1000.0
        self._rng = random.Random(seed)
        self._lines = max(1, shared_bytes // line_bytes)
        self.total_writes = 0
        self.total_reads = 0

    def _pick_line(self) -> int:
        index = self._rng.randrange(self._lines)
        return self.shared_base + index * self.line_bytes

    def step(self) -> List[RemoteAccess]:
        """Remote accesses occurring during one local instruction."""
        if self.remote_nodes == 0:
            return []
        events: List[RemoteAccess] = []
        # Bernoulli approximation of a Poisson process; rates are << 1 per
        # instruction so at most a couple of events fire per step.
        if self._rng.random() < self._write_prob:
            events.append(RemoteAccess(self._pick_line(), is_write=True))
            self.total_writes += 1
        if self._read_prob and self._rng.random() < self._read_prob:
            events.append(RemoteAccess(self._pick_line(), is_write=False))
            self.total_reads += 1
        return events

    def stream(self, instructions: int) -> Iterator[Tuple[int, RemoteAccess]]:
        """Yield ``(instruction_index, access)`` pairs over a window."""
        for index in range(instructions):
            for event in self.step():
                yield index, event
