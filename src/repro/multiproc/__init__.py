"""Multi-chip coherence traffic modelling.

The paper's simulations accurately model cross-chip coherence traffic for a
2-way (and, for Figure 6, 4-way) multiprocessor.  We reproduce that with a
*sharing model*: a seeded stochastic process standing in for the other
chips' accesses to shared data.  Remote writes invalidate lines in the home
chip's L2 and surrender ownership held in its SMAC; remote reads downgrade.
"""

from .sharing import RemoteAccess, SharingModel
from .system import MultiChipSystem

__all__ = ["MultiChipSystem", "RemoteAccess", "SharingModel"]
