"""Home-node view of a multi-chip system.

``MultiChipSystem`` couples one chip's :class:`~repro.memory.MemorySystem`
(the "home" node whose trace we simulate) with a :class:`SharingModel` that
stands in for the other chips.  Between local instructions the sharing model
may emit remote reads/writes, which are applied to the home node's L2 and
SMAC as snoops.  This is the structure behind Figure 6: as nodes are added,
remote traffic grows and more SMAC-held ownership is stolen.
"""

from __future__ import annotations

from ..config import MemoryConfig, SystemConfig
from ..memory import MemorySystem
from .sharing import SharingModel


class MultiChipSystem:
    """One simulated home chip plus modelled remote coherence traffic."""

    def __init__(
        self,
        memory_config: MemoryConfig,
        system_config: SystemConfig,
        sharing: SharingModel | None = None,
    ) -> None:
        self.system_config = system_config
        self.memory = MemorySystem(
            memory_config, single_chip=(system_config.nodes == 1)
        )
        self.sharing = sharing
        if sharing is not None and sharing.remote_nodes != system_config.nodes - 1:
            raise ValueError(
                f"sharing model assumes {sharing.remote_nodes} remote nodes but "
                f"the system has {system_config.nodes - 1}"
            )

    def tick(self) -> None:
        """Advance remote chips by one local instruction slot."""
        if self.sharing is None:
            return
        for event in self.sharing.step():
            if event.is_write:
                self.memory.snoop_store(event.address)
            else:
                self.memory.snoop_load(event.address)
