"""Performance measurement harnesses for the repro codebase.

:mod:`repro.bench.perf` is the core-loop microbenchmark behind
``mlpsim bench --perf`` and the committed ``BENCH_core.json`` baseline:
fixed seeds, warmup reps, median-of-k timing, instructions/sec and
epochs/sec per workload profile, plus the regression check the CI
perf-smoke step runs.

The methodology (and why it ships with the repo instead of living in a
gist) follows the ECM-model paper's position that a performance claim is
only as good as its measurement recipe: every number in ``BENCH_core.json``
is reproducible by re-running the same harness at the same settings.
"""

from .perf import (
    BENCH_FILENAME,
    BenchProfile,
    DEFAULT_PROFILES,
    check_regression,
    load_report,
    run_core_bench,
    write_report,
)

__all__ = [
    "BENCH_FILENAME",
    "BenchProfile",
    "DEFAULT_PROFILES",
    "check_regression",
    "load_report",
    "run_core_bench",
    "write_report",
]
