"""Core-loop microbenchmark: tracked instructions/sec for MLPsim.

The paper's evaluation is thousands of MLPsim runs (every figure sweeps the
core configuration over an annotated trace), so the per-instruction scan in
:meth:`repro.core.mlpsim.MlpSimulator.run` is the throughput bottleneck of
the whole harness.  This module measures exactly that loop:

1. build annotated traces for a fixed set of workload profiles — fixed
   seed, fixed sizing, ``calibrate=False``, in-memory cache only — so the
   simulator input is bit-identical across machines and commits,
2. per profile, run the simulator ``warmup_reps`` times untimed (interpreter
   warmup, branch-predictor-friendly bytecode caches), then ``reps`` timed
   runs with GC disabled, and report the **median**,
3. score **instructions/sec** (trace instructions retired per wall second)
   and **epochs/sec**, plus the geometric mean across profiles.

Annotation time is deliberately excluded: it is paid once per sweep and
already amortised by the artifact cache; the figure-sweep cost that scales
with configuration count is the simulation loop alone.

The emitted report (``BENCH_core.json`` at the repo root) is the committed
performance baseline.  ``check_regression`` compares a fresh run against
it; the CI perf-smoke step fails the build when instructions/sec drops more
than 20% below the committed numbers.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import ScoutMode, StorePrefetchMode
from ..core import MlpSimulator
from ..harness.experiment import ExperimentSettings, Workbench

__all__ = [
    "BENCH_FILENAME",
    "BACKENDS_FILENAME",
    "BenchProfile",
    "DEFAULT_PROFILES",
    "check_backends_regression",
    "check_regression",
    "load_report",
    "run_backend_bench",
    "run_core_bench",
    "write_report",
]

#: Canonical location of the committed baseline, relative to the repo root.
BENCH_FILENAME = "BENCH_core.json"

#: Committed per-backend comparison report (``mlpsim bench --perf
#: --backend all``): the same profiles measured on every registered
#: execution backend, with geomean speedups vs the reference loop.
BACKENDS_FILENAME = "BENCH_backends.json"

#: Report schema version (bump when the JSON layout changes).
SCHEMA_VERSION = 1

#: Fixed trace sizing/seeding: changing these invalidates every committed
#: number, so they are constants of the harness rather than CLI knobs.
BENCH_WARMUP = 8_000
BENCH_MEASURE = 24_000
BENCH_SEED = 11


@dataclass(frozen=True)
class BenchProfile:
    """One benchmarked configuration: a workload under fixed core knobs."""

    name: str
    workload: str
    variant: str = "pc"
    core_changes: Tuple[Tuple[str, Any], ...] = ()

    def config_kwargs(self) -> Dict[str, Any]:
        return dict(self.core_changes)


#: The tracked profile set: one per workload, covering the consistency
#: models and the scout/SLE machinery so every class handler is exercised.
DEFAULT_PROFILES: Tuple[BenchProfile, ...] = (
    BenchProfile("database_pc", "database"),
    BenchProfile("database_wc", "database", "wc"),
    BenchProfile(
        "tpcw_scout_hws2", "tpcw",
        core_changes=(
            ("scout", ScoutMode.HWS2),
            ("store_prefetch", StorePrefetchMode.NONE),
        ),
    ),
    BenchProfile(
        "specjbb_sle_pps", "specjbb", "pc_sle",
        core_changes=(("prefetch_past_serializing", True),),
    ),
    BenchProfile(
        "specweb_wc_sp2", "specweb", "wc",
        core_changes=(("store_prefetch", StorePrefetchMode.AT_EXECUTE),),
    ),
)


@dataclass
class _ProfileMeasurement:
    """Internal accumulator for one profile's timed runs."""

    profile: BenchProfile
    instructions: int = 0
    epochs: int = 0
    epi_per_1000: float = 0.0
    seconds: List[float] = field(default_factory=list)

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.seconds)

    def to_dict(self) -> Dict[str, Any]:
        median = self.median_seconds
        return {
            "workload": self.profile.workload,
            "variant": self.profile.variant,
            "instructions": self.instructions,
            "epochs": self.epochs,
            "epi_per_1000": round(self.epi_per_1000, 9),
            "median_seconds": median,
            "min_seconds": min(self.seconds),
            "instructions_per_sec": self.instructions / median,
            "epochs_per_sec": self.epochs / median,
        }


def _geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _backend_runner(backend: str, config, annotated):
    """A zero-arg callable executing one simulation on *backend*.

    The empty name and ``"reference"`` keep the pre-backend measurement
    loop byte-identical (one reused :class:`MlpSimulator`); other names go
    through :func:`repro.core.backend.resolve_backend`, whose built-ins
    cache per-trace skip tables so warmup repetitions absorb the one-time
    table build exactly like a long-lived sweep does.
    """
    if not backend or backend == "reference":
        simulator = MlpSimulator(config)
        return lambda: simulator.run(annotated)
    from ..core.backend import resolve_backend

    chosen = resolve_backend(backend)
    return lambda: chosen.simulate(config, annotated)


def run_core_bench(
    reps: int = 5,
    warmup_reps: int = 2,
    profiles: Sequence[BenchProfile] = DEFAULT_PROFILES,
    verbose: bool = False,
    backend: str = "",
) -> Dict[str, Any]:
    """Measure the core simulation loop and return the report dict.

    *reps* timed repetitions per profile (median reported) after
    *warmup_reps* untimed ones.  The annotated traces are built through a
    cache-less Workbench at the harness's fixed sizing, so the numbers are
    a pure function of the code under test and the host machine.
    *backend* measures a specific execution backend; the default keeps the
    historical reference-loop measurement.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    if warmup_reps < 0:
        raise ValueError("warmup_reps must be non-negative")

    bench = Workbench(
        ExperimentSettings(
            warmup=BENCH_WARMUP,
            measure=BENCH_MEASURE,
            seed=BENCH_SEED,
            calibrate=False,
        ),
        cache_dir=None,
    )
    measurements: List[_ProfileMeasurement] = []
    for profile in profiles:
        annotated = bench.annotated(profile.workload, profile.variant)
        config = bench.simulation_config(
            profile.workload, **profile.config_kwargs()
        )
        if profile.variant.startswith("wc"):
            from ..config import ConsistencyModel

            config = config.with_core(consistency=ConsistencyModel.WC)
        run_once = _backend_runner(backend, config, annotated)
        for _ in range(warmup_reps):
            run_once()
        measurement = _ProfileMeasurement(profile=profile)
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for _ in range(reps):
                start = time.perf_counter()
                result = run_once()
                measurement.seconds.append(time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
        measurement.instructions = result.instructions
        measurement.epochs = result.epoch_count
        measurement.epi_per_1000 = result.epi_per_1000
        measurements.append(measurement)
        if verbose:
            row = measurement.to_dict()
            print(
                f"  {profile.name:20s} "
                f"{row['instructions_per_sec']:12.0f} insts/s "
                f"{row['epochs_per_sec']:10.1f} epochs/s "
                f"(median of {reps}: {row['median_seconds'] * 1e3:.2f} ms)"
            )

    per_profile = {m.profile.name: m.to_dict() for m in measurements}
    settings: Dict[str, Any] = {
        "warmup": BENCH_WARMUP,
        "measure": BENCH_MEASURE,
        "seed": BENCH_SEED,
        "reps": reps,
        "warmup_reps": warmup_reps,
    }
    if backend:
        settings["backend"] = backend
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "mlpsim-core",
        "settings": settings,
        "python": platform.python_version(),
        "profiles": per_profile,
        "aggregate": {
            "instructions_per_sec_geomean": _geomean(
                [row["instructions_per_sec"] for row in per_profile.values()]
            ),
            "epochs_per_sec_geomean": _geomean(
                [row["epochs_per_sec"] for row in per_profile.values()]
            ),
        },
    }


def run_backend_bench(
    reps: int = 5,
    warmup_reps: int = 2,
    backends: Optional[Sequence[str]] = None,
    profiles: Sequence[BenchProfile] = DEFAULT_PROFILES,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Measure every execution backend over the tracked profile set.

    Runs :func:`run_core_bench` once per backend (defaulting to every
    registered backend whose dependencies are importable — ``batch`` is
    skipped, and recorded as skipped, when numpy is missing) and reports
    per-backend profiles/aggregates plus geomean speedups relative to the
    ``reference`` section.
    """
    from ..core.backend import backend_names
    from ..core.backends.batch import numpy_available

    if backends is None:
        backends = sorted(backend_names(), key=lambda n: (n != "reference", n))
    sections: Dict[str, Dict[str, Any]] = {}
    skipped: List[str] = []
    for name in backends:
        if name == "batch" and not numpy_available():
            skipped.append(name)
            continue
        if verbose:
            print(f"backend {name}:")
        report = run_core_bench(
            reps=reps, warmup_reps=warmup_reps, profiles=profiles,
            verbose=verbose, backend=name,
        )
        sections[name] = {
            "profiles": report["profiles"],
            "aggregate": report["aggregate"],
        }
    reference = sections.get("reference", {})
    ref_geo = reference.get("aggregate", {}).get(
        "instructions_per_sec_geomean"
    )
    speedups = {
        name: section["aggregate"]["instructions_per_sec_geomean"] / ref_geo
        for name, section in sections.items()
    } if ref_geo else {}
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "mlpsim-backends",
        "settings": {
            "warmup": BENCH_WARMUP,
            "measure": BENCH_MEASURE,
            "seed": BENCH_SEED,
            "reps": reps,
            "warmup_reps": warmup_reps,
        },
        "python": platform.python_version(),
        "backends": sections,
        "skipped": skipped,
        "speedup_vs_reference_geomean": speedups,
    }


def check_backends_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.20,
) -> List[str]:
    """The per-backend analogue of :func:`check_regression`.

    Each backend section carries the same ``profiles``/``aggregate`` shape
    as a core-bench report, so the per-profile and geomean thresholds are
    applied within every backend present in both reports.  Backends in only
    one report are ignored (e.g. ``batch`` skipped where numpy is absent).
    """
    failures: List[str] = []
    for name, base_section in baseline.get("backends", {}).items():
        cur_section = current.get("backends", {}).get(name)
        if cur_section is None:
            continue
        failures.extend(
            f"{name}/{failure}"
            for failure in check_regression(
                cur_section, base_section, max_regression=max_regression,
            )
        )
    return failures


def write_report(report: Dict[str, Any], path: str | Path) -> Path:
    """Write *report* as stable, diff-friendly JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


def load_report(path: str | Path) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or (
        "profiles" not in data and "backends" not in data
    ):
        raise ValueError(f"{path} is not a perf-bench report")
    return data


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.20,
) -> List[str]:
    """Compare *current* against a committed *baseline* report.

    Returns a list of human-readable failures: one per profile whose
    instructions/sec fell more than *max_regression* below the baseline,
    plus one for the geometric mean.  An empty list means the run passed.
    Profiles present in only one report are ignored (the tracked set may
    grow over time).
    """
    if not 0.0 < max_regression < 1.0:
        raise ValueError("max_regression must be in (0, 1)")
    failures: List[str] = []
    floor = 1.0 - max_regression
    for name, base_row in baseline.get("profiles", {}).items():
        cur_row = current.get("profiles", {}).get(name)
        if cur_row is None:
            continue
        base_ips = base_row["instructions_per_sec"]
        cur_ips = cur_row["instructions_per_sec"]
        if cur_ips < base_ips * floor:
            failures.append(
                f"{name}: {cur_ips:.0f} insts/s is "
                f"{100 * (1 - cur_ips / base_ips):.1f}% below the committed "
                f"baseline ({base_ips:.0f} insts/s; allowed "
                f"{100 * max_regression:.0f}%)"
            )
    base_geo = baseline.get("aggregate", {}).get(
        "instructions_per_sec_geomean"
    )
    cur_geo = current.get("aggregate", {}).get("instructions_per_sec_geomean")
    if base_geo and cur_geo and cur_geo < base_geo * floor:
        failures.append(
            f"geomean: {cur_geo:.0f} insts/s is "
            f"{100 * (1 - cur_geo / base_geo):.1f}% below the committed "
            f"baseline ({base_geo:.0f} insts/s)"
        )
    return failures


def _backends_main(
    reps: int,
    warmup_reps: int,
    out: Optional[str],
    baseline: Optional[str],
    max_regression: float,
) -> int:
    """``mlpsim bench --perf --backend all``: the backend matrix report."""
    print(
        f"mlpsim backend bench: {BENCH_MEASURE} measured instructions, "
        f"seed {BENCH_SEED}, median of {reps} (+{warmup_reps} warmup)"
    )
    report = run_backend_bench(
        reps=reps, warmup_reps=warmup_reps, verbose=True,
    )
    for name, speedup in sorted(
        report["speedup_vs_reference_geomean"].items()
    ):
        geo = report["backends"][name]["aggregate"][
            "instructions_per_sec_geomean"
        ]
        print(
            f"  {name:12s} geomean {geo:12.0f} insts/s "
            f"({speedup:.2f}x vs reference)"
        )
    for name in report["skipped"]:
        print(f"  {name:12s} skipped (missing optional dependency)")

    if baseline is not None:
        committed = load_report(baseline)
        failures = check_backends_regression(
            report, committed, max_regression=max_regression,
        )
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(
            f"  regression gate ok (tolerance {100 * max_regression:.0f}%)"
        )

    if out is not None:
        write_report(report, out)
        print(f"  wrote {out}")
    return 0


def main(
    reps: int = 5,
    warmup_reps: int = 2,
    out: Optional[str] = None,
    baseline: Optional[str] = None,
    max_regression: float = 0.20,
    keep_baseline: bool = True,
    backend: Optional[str] = None,
) -> int:
    """Drive one measurement: print, optionally persist and gate.

    When *out* names an existing report carrying a ``baseline`` section
    (the committed pre-optimization numbers), that section is preserved in
    the rewritten file (*keep_baseline*) so the speedup trail survives
    re-measurement.  *baseline* enables the regression gate against a
    committed report; a failure returns exit status 1.

    *backend* measures a single named execution backend, or ``"all"`` for
    the full backend comparison (written/gated as ``BENCH_backends.json``).
    """
    if backend == "all":
        return _backends_main(
            reps, warmup_reps, out, baseline, max_regression,
        )
    tag = f" [{backend}]" if backend else ""
    print(
        f"mlpsim core bench{tag}: {BENCH_MEASURE} measured instructions, "
        f"seed {BENCH_SEED}, median of {reps} (+{warmup_reps} warmup)"
    )
    report = run_core_bench(
        reps=reps, warmup_reps=warmup_reps, verbose=True,
        backend=backend or "",
    )
    geo = report["aggregate"]["instructions_per_sec_geomean"]
    print(f"  geomean: {geo:.0f} instructions/sec")

    if baseline is not None:
        committed = load_report(baseline)
        reference = committed
        base_geo = reference.get("aggregate", {}).get(
            "instructions_per_sec_geomean"
        )
        if base_geo:
            print(
                f"  vs committed {baseline}: {geo / base_geo:.2f}x geomean"
            )
        failures = check_regression(
            report, reference, max_regression=max_regression
        )
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(
            f"  regression gate ok (tolerance "
            f"{100 * max_regression:.0f}%)"
        )

    if out is not None:
        out_path = Path(out)
        if keep_baseline and out_path.exists():
            try:
                previous = load_report(out_path)
            except (ValueError, json.JSONDecodeError):
                previous = {}
            if "baseline" in previous:
                report["baseline"] = previous["baseline"]
                base_geo = report["baseline"]["aggregate"][
                    "instructions_per_sec_geomean"
                ]
                report["speedup_vs_baseline"] = geo / base_geo
        write_report(report, out_path)
        print(f"  wrote {out_path}")
    return 0
