"""The unified entry point for running, sweeping and remoting simulations.

Three execution surfaces accreted as the codebase grew — the serial
:class:`~repro.harness.experiment.Workbench`, the process-pool
:class:`~repro.engine.runner.EngineRunner` and the HTTP
:class:`~repro.service.client.ServiceClient` — each with its own
construction ritual.  This module is the single documented front door over
all three:

- :func:`run` — one simulation, one result::

      from repro import api

      result = api.run("database", store_prefetch="sp2")
      print(result.epi_per_1000)

- :func:`sweep` — a configuration grid, executed in parallel through the
  engine's worker pool with artifact caching::

      spec = api.SweepSpec.build(
          "database", store_queue=[16, 32, 64],
          store_prefetch=["sp0", "sp1", "sp2"],
      )
      records = api.sweep(spec)
      best = min(records, key=lambda r: r.epi_per_1000)

- :func:`connect` — the same verbs against a running service daemon::

      client = api.connect("http://127.0.0.1:8137")
      receipt = client.submit_sweep("database", store_queue=[16, 32])
      report = client.result(receipt["id"])

:func:`workbench` constructs the underlying serial workbench for repeated
interactive runs that should share one annotated-trace cache.  The old
import paths (``repro.harness.experiment.Workbench``,
``repro.engine.runner.EngineRunner``, ``repro.service.client
.ServiceClient``) keep working but are deprecated as *entry points*; new
code should start here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Mapping, Optional, Union

from .config import SimulationConfig
from .core.results import SimulationResult
from .engine.cache import ArtifactCache, resolve_cache_dir
from .engine.runner import (
    EngineRunner,
    JobResult,
    JobSpec,
    RunReport,
    ShardedReport,
)
from .harness.experiment import ExperimentSettings, Workbench
from .harness.sweeps import SweepRecord, SweepSpec, valid_axes
from .obs.options import ObsOptions
from .obs.recorder import EpochTimelineRecorder
from .service.client import ServiceClient
from .shard.checkpoint import CheckpointStore
from .shard.execute import shard_plan_for
from .shard.plan import ShardPlan

__all__ = [
    "EngineRunner",
    "ExperimentSettings",
    "JobResult",
    "JobSpec",
    "ObsOptions",
    "RunReport",
    "ServiceClient",
    "ShardPlan",
    "ShardedReport",
    "SimulationConfig",
    "SimulationResult",
    "SweepRecord",
    "SweepSpec",
    "Workbench",
    "connect",
    "resume",
    "run",
    "shard_plan",
    "sweep",
    "valid_axes",
    "workbench",
]


def _resolve_obs(
    trace: Union[str, Path, None], obs: Optional[ObsOptions],
) -> Optional[ObsOptions]:
    """``trace=`` is sugar for ``obs=ObsOptions.for_trace(trace)``."""
    if trace is not None and obs is not None:
        raise ValueError(
            "pass either trace= (a trace directory) or obs= "
            "(full ObsOptions), not both"
        )
    if trace is not None:
        return ObsOptions.for_trace(trace)
    return obs


def workbench(
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
) -> Workbench:
    """A serial workbench for repeated runs sharing one trace cache.

    ``cache_dir="auto"`` persists artifacts under ``$REPRO_CACHE_DIR`` or
    ``.repro-cache``; pass ``None`` for in-memory caching only.
    """
    return Workbench(settings or ExperimentSettings(), cache_dir=cache_dir)


def run(
    profile: str,
    config: Optional[SimulationConfig] = None,
    *,
    variant: str = "pc",
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    bench: Optional[Workbench] = None,
    trace: Union[str, Path, None] = None,
    obs: Optional[ObsOptions] = None,
    shards: int = 1,
    checkpoint_every: int = 0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    **core_changes: Any,
) -> SimulationResult:
    """Simulate one workload *profile* under one configuration.

    *profile* names a calibrated workload (``"database"``, ``"tpcw"``,
    ``"specjbb"``, ``"specweb"``); *variant* selects the trace flavour
    (``"pc"``, ``"wc"``, ``"pc_sle"``, ...).  *config* overrides the whole
    :class:`SimulationConfig`; *core_changes* tweak individual core fields
    (``store_prefetch="sp2"``, ``store_queue=64``, ...) — see
    :func:`valid_axes` for the accepted names.  Pass *bench* (from
    :func:`workbench`) to reuse an annotated trace across calls.

    *backend* selects the execution backend — ``"reference"`` (the golden
    tick loop), ``"event"`` (event-driven epoch skipping) or ``"batch"``
    (the numpy lockstep kernel; needs the ``fast`` extra).  ``None`` defers
    to ``$REPRO_BACKEND`` and then ``"reference"``.  Backends are
    bit-identical, so this only changes execution speed::

        result = api.run("database", backend="event")

    *shards* > 1 segments the trace at probed quiescent boundaries and fans
    the segments across *workers* processes; *checkpoint_every* > 0
    additionally snapshots progress every K instructions so interrupted
    runs resume instead of restarting (``mlpsim resume`` /
    :func:`resume`).  Either engages the fault-tolerant sharded execution
    path; the returned result is bit-identical to an unsharded run.

    *trace* names a directory to write a JSONL epoch trace into
    (rendered by ``mlpsim trace`` / ``mlpsim obs report``); *obs* passes
    full :class:`ObsOptions` instead.  They are mutually exclusive, and
    neither perturbs the simulation result.
    """
    options = _resolve_obs(trace, obs)
    if shards > 1 or checkpoint_every > 0:
        if bench is not None:
            raise ValueError(
                "bench= cannot be combined with shards=/checkpoint_every= "
                "(sharded runs execute through an EngineRunner)"
            )
        runner = EngineRunner(
            settings=settings or ExperimentSettings(),
            cache_dir=cache_dir,
            workers=workers,
            obs=options,
        )
        spec = JobSpec(
            workload=profile,
            variant=variant,
            config=config,
            core_changes=tuple(sorted(core_changes.items())),
            backend=backend or "",
        )
        report = runner.run_sharded(
            spec, shards, checkpoint_every=checkpoint_every,
        )
        report.raise_on_failure()
        assert report.merged is not None
        return report.merged
    if bench is None:
        bench = workbench(settings, cache_dir)
    if options is None or options.trace_dir is None:
        return bench.run(
            profile, variant=variant, config=config, backend=backend,
            **core_changes,
        )
    tracer = options.open_tracer()
    try:
        observer = (
            EpochTimelineRecorder(tracer, label=f"{profile}/{variant}")
            if options.trace_epochs else None
        )
        return bench.run(
            profile, variant=variant, config=config, observer=observer,
            backend=backend, **core_changes,
        )
    finally:
        tracer.close()


def sweep(
    spec: Union[SweepSpec, Mapping[str, Any]],
    *,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
    job_timeout: float = 600.0,
    runner: Optional[EngineRunner] = None,
    trace: Union[str, Path, None] = None,
    obs: Optional[ObsOptions] = None,
    backend: Optional[str] = None,
) -> List[SweepRecord]:
    """Execute a sweep *spec* and return one record per grid point.

    *spec* is a :class:`SweepSpec` (build one with
    :meth:`SweepSpec.build`) or an equivalent mapping with ``workloads``,
    ``axes`` and optionally ``variant`` keys — the same shape the service
    protocol accepts.  The grid fans out across *workers* processes
    (default ``min(4, cpus)``) sharing the persistent artifact cache;
    records come back workload-major in grid order, deterministically.

    *backend* runs every grid point on the named execution backend;
    ``backend="batch"`` additionally makes the engine advance the whole
    grid as one in-process numpy lockstep batch instead of fanning out
    across processes.  Results are bit-identical across backends.

    *trace* names a directory the engine (every worker process) writes
    JSONL trace files into; *obs* passes full :class:`ObsOptions`.
    Mutually exclusive; ignored if an explicit *runner* is supplied (the
    runner already carries its own obs configuration).
    """
    options = _resolve_obs(trace, obs)
    if runner is not None and options is not None:
        raise ValueError(
            "trace=/obs= cannot be combined with an explicit runner; "
            "configure EngineRunner(obs=...) instead"
        )
    if not isinstance(spec, SweepSpec):
        try:
            workloads = spec["workloads"]
            axes = dict(spec["axes"])
        except (TypeError, KeyError) as exc:
            raise TypeError(
                "spec must be a SweepSpec or a mapping with 'workloads' "
                "and 'axes' keys"
            ) from exc
        spec = SweepSpec.build(workloads, spec.get("variant", "pc"), **axes)
    if runner is None:
        runner = EngineRunner(
            settings=settings or ExperimentSettings(),
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            obs=options,
        )
    jobs = spec.to_jobs()
    if backend:
        from dataclasses import replace

        jobs = [replace(job, backend=backend) for job in jobs]
    report = runner.run(jobs)
    return spec.records(report)


def shard_plan(
    profile: str,
    shards: int = 4,
    *,
    variant: str = "pc",
    config: Optional[SimulationConfig] = None,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    bench: Optional[Workbench] = None,
    **core_changes: Any,
) -> ShardPlan:
    """The deterministic shard plan a sharded :func:`run` would use.

    Probes the simulation's quiescent epoch boundaries (cached per
    configuration + trace) and returns the :class:`ShardPlan` — inspect
    ``plan.shards`` for the spans, ``plan.shard_count`` for how many
    shards the trace actually supports (boundary-starved traces yield
    fewer than requested, never unsafe cuts).
    """
    if bench is None:
        bench = workbench(settings, cache_dir)
    spec = JobSpec(
        workload=profile,
        variant=variant,
        config=config,
        core_changes=tuple(sorted(core_changes.items())),
    )
    return shard_plan_for(bench, spec, shards)


def resume(
    job_or_token: Union[JobSpec, str],
    *,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
) -> JobResult:
    """Resume a checkpointed job from its latest persisted checkpoint.

    Accepts either the original :class:`JobSpec` (with *settings* matching
    the original run) or the resume *token* a sharded/checkpointed run
    reported — the token's stored record carries the spec and settings, so
    ``api.resume(token)`` needs nothing else beyond the same *cache_dir*.

    The job re-executes through the engine; if a verified checkpoint
    exists it restarts from that snapshot (``JobResult.resumed_pos`` tells
    you where), otherwise it runs from the beginning.  A corrupt
    checkpoint raises :class:`repro.errors.CheckpointCorruptError` when
    resuming by token, and is silently discarded (fresh start) when
    resuming by spec.
    """
    if isinstance(job_or_token, JobSpec):
        spec = job_or_token
        if spec.checkpoint_every <= 0:
            raise ValueError(
                "the job spec was never checkpointed "
                "(checkpoint_every == 0); there is nothing to resume from"
            )
    else:
        directory = resolve_cache_dir(cache_dir)
        if directory is None:
            raise ValueError(
                "resuming from a token requires a persistent cache_dir"
            )
        store = CheckpointStore(ArtifactCache(directory))
        record = store.load_record(str(job_or_token))
        if record is None:
            raise KeyError(
                f"no checkpoint stored under token "
                f"{str(job_or_token)[:16]}... in {directory}"
            )
        record.verify()
        spec = record.spec
        settings = record.settings
    runner = EngineRunner(
        settings=settings or ExperimentSettings(),
        cache_dir=cache_dir,
        workers=workers if workers is not None else 1,
    )
    report = runner.run([spec])
    report.raise_on_failure()
    return report.jobs[0]


def connect(
    url: str,
    *,
    timeout: float = 30.0,
    retries: int = 3,
    backoff: float = 0.1,
) -> ServiceClient:
    """A client for a running simulation service daemon.

    The returned :class:`ServiceClient` speaks the versioned wire protocol
    and mirrors this module's verbs: ``submit`` (and the
    ``submit_sweep``/``submit_simulate``/``submit_figure`` conveniences),
    ``result`` and ``cancel``.
    """
    return ServiceClient(
        url, timeout=timeout, retries=retries, backoff=backoff,
    )
