"""The unified entry point for running, sweeping and remoting simulations.

Three execution surfaces accreted as the codebase grew — the serial
:class:`~repro.harness.experiment.Workbench`, the process-pool
:class:`~repro.engine.runner.EngineRunner` and the HTTP
:class:`~repro.service.client.ServiceClient` — each with its own
construction ritual.  This module is the single documented front door over
all three:

- :func:`run` — one simulation, one result::

      from repro import api

      result = api.run("database", store_prefetch="sp2")
      print(result.epi_per_1000)

- :func:`sweep` — a configuration grid, executed in parallel through the
  engine's worker pool with artifact caching::

      spec = api.SweepSpec.build(
          "database", store_queue=[16, 32, 64],
          store_prefetch=["sp0", "sp1", "sp2"],
      )
      records = api.sweep(spec)
      best = min(records, key=lambda r: r.epi_per_1000)

- :func:`tune` — search the design space instead of sweeping it: three
  seeded strategies (grid/random/genetic) with analytical pruning,
  cached deduplication and resumable state::

      result = api.tune(
          {"store_queue": [16, 32, 64], "scout": ["none", "hws2"]},
          profile="database", strategy="genetic", budget=12, seed=7,
      )
      print(result.best_knobs, result.best_epi_per_1000)

- :func:`estimate` — the analytical EPI prediction behind ``mlpsim
  estimate``: no trace read, no simulation run, sub-millisecond::

      guess = api.estimate("database", scout="hws2")
      print(guess.predicted_epi_per_1000)

- :func:`connect` — the same verbs against a running service daemon::

      client = api.connect("http://127.0.0.1:8137")
      receipt = client.submit_sweep("database", store_queue=[16, 32])
      report = client.result(receipt["id"])

:func:`run`, :func:`sweep` (via the ``contexts``/``scheduler`` axes),
:func:`tune` and :func:`estimate` all accept the SMT axis: ``contexts=N``
runs N hardware contexts over one shared memory system and returns a
:class:`~repro.smt.results.SmtResult` with per-context breakdowns plus
STP/ANTT/fairness aggregates; ``scheduler=`` picks the thread-scheduling
policy (``round_robin``, ``icount``, ``mlp``)::

    smt = api.run("oltp_java", contexts=2, scheduler="mlp")
    print(smt.stp, smt.antt, smt.contexts[0].epi_per_1000)

:func:`workbench` constructs the underlying serial workbench for repeated
interactive runs that should share one annotated-trace cache.

Since v2.0 this module (plus the ``mlpsim`` CLI and the service protocol)
is the *only supported entry-point surface*: the deprecated aliases
(``repro.Workbench``, ``repro.harness.Workbench``,
``repro.harness.sweeps.sweep``/``sweep_workloads``, the
``repro.service.metrics`` shim) have been removed per the DESIGN.md
timeline.  The underlying classes are still importable from their
canonical homes (``repro.harness.experiment.Workbench`` et al.) for
extension and testing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Mapping, Optional, Union

from .config import SimulationConfig
from .core.results import SimulationResult
from .estimate import EpiEstimate, estimate
from .engine.cache import ArtifactCache, resolve_cache_dir
from .engine.runner import (
    EngineRunner,
    JobResult,
    JobSpec,
    RunReport,
    ShardedReport,
)
from .harness.experiment import ExperimentSettings, Workbench
from .harness.sweeps import (
    SweepRecord,
    SweepSpec,
    coerce_axis_value,
    valid_axes,
)
from .obs.options import ObsOptions
from .obs.recorder import EpochTimelineRecorder
from .service.client import ServiceClient
from .shard.checkpoint import CheckpointStore
from .shard.execute import shard_plan_for
from .shard.plan import ShardPlan
from .smt import SmtResult, run_smt, valid_schedulers
from .tune import SearchSpace, TuneResult, TuneSpec, run_tune

__all__ = [
    "EngineRunner",
    "EpiEstimate",
    "ExperimentSettings",
    "JobResult",
    "JobSpec",
    "ObsOptions",
    "RunReport",
    "SearchSpace",
    "ServiceClient",
    "ShardPlan",
    "ShardedReport",
    "SimulationConfig",
    "SimulationResult",
    "SmtResult",
    "SweepRecord",
    "SweepSpec",
    "TuneResult",
    "TuneSpec",
    "Workbench",
    "connect",
    "estimate",
    "resume",
    "run",
    "shard_plan",
    "sweep",
    "tune",
    "valid_axes",
    "valid_schedulers",
    "workbench",
]


def _resolve_obs(
    trace: Union[str, Path, None], obs: Optional[ObsOptions],
) -> Optional[ObsOptions]:
    """``trace=`` is sugar for ``obs=ObsOptions.for_trace(trace)``."""
    if trace is not None and obs is not None:
        raise ValueError(
            "pass either trace= (a trace directory) or obs= "
            "(full ObsOptions), not both"
        )
    if trace is not None:
        return ObsOptions.for_trace(trace)
    return obs


def workbench(
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
) -> Workbench:
    """A serial workbench for repeated runs sharing one trace cache.

    ``cache_dir="auto"`` persists artifacts under ``$REPRO_CACHE_DIR`` or
    ``.repro-cache``; pass ``None`` for in-memory caching only.
    """
    return Workbench(settings or ExperimentSettings(), cache_dir=cache_dir)


def _coerce_core_changes(core_changes: Mapping[str, Any]) -> dict:
    """Type every knob through the sweep axes.

    Unknown knob names raise ``ValueError`` listing the valid axes —
    the same actionable error surface as the CLI and the service.
    """
    return {
        name: coerce_axis_value(name, value)
        for name, value in core_changes.items()
    }


def run(
    profile: Union[str, JobSpec, Mapping[str, Any]],
    config: Optional[SimulationConfig] = None,
    *,
    variant: str = "pc",
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    bench: Optional[Workbench] = None,
    trace: Union[str, Path, None] = None,
    obs: Optional[ObsOptions] = None,
    shards: int = 1,
    checkpoint_every: int = 0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    contexts: int = 1,
    scheduler: str = "",
    **core_changes: Any,
) -> Union[SimulationResult, SmtResult]:
    """Simulate one workload *profile* under one configuration.

    *profile* names a calibrated workload (``"database"``, ``"tpcw"``,
    ``"specjbb"``, ``"specweb"``) — or is a whole :class:`JobSpec` (or an
    equivalent mapping, the shape ``ServiceClient.submit_simulate`` also
    accepts), whose workload/variant/config/core-changes/backend seed the
    run and explicit keyword arguments override.  *variant* selects the
    trace flavour (``"pc"``, ``"wc"``, ``"pc_sle"``, ...).  *config*
    overrides the whole :class:`SimulationConfig`; *core_changes* tweak
    individual core fields (``store_prefetch="sp2"``, ``store_queue=64``,
    ...) — see :func:`valid_axes` for the accepted names; an unknown name
    raises ``ValueError`` listing them.  Pass *bench* (from
    :func:`workbench`) to reuse an annotated trace across calls.

    *backend* selects the execution backend — ``"reference"`` (the golden
    tick loop), ``"event"`` (event-driven epoch skipping) or ``"batch"``
    (the numpy lockstep kernel; needs the ``fast`` extra).  ``None`` defers
    to ``$REPRO_BACKEND`` and then ``"reference"``.  Backends are
    bit-identical, so this only changes execution speed::

        result = api.run("database", backend="event")

    *shards* > 1 segments the trace at probed quiescent boundaries and fans
    the segments across *workers* processes; *checkpoint_every* > 0
    additionally snapshots progress every K instructions so interrupted
    runs resume instead of restarting (``mlpsim resume`` /
    :func:`resume`).  Either engages the fault-tolerant sharded execution
    path; the returned result is bit-identical to an unsharded run.

    *trace* names a directory to write a JSONL epoch trace into
    (rendered by ``mlpsim trace`` / ``mlpsim obs report``); *obs* passes
    full :class:`ObsOptions` instead.  They are mutually exclusive, and
    neither perturbs the simulation result.

    *contexts* > 1 runs an SMT simulation: N hardware contexts sharing
    the SMAC and lock lines, each running one component of the *profile*
    mix (``"database+specjbb"`` or a named mix like ``"oltp_java"``;
    a single workload name replicates).  *scheduler* picks the policy
    (see :func:`valid_schedulers`).  Returns an :class:`SmtResult`
    instead of a :class:`SimulationResult`; ``contexts=1`` is
    bit-identical to the single-context pipeline under every policy.
    SMT runs do not compose with *shards*/*checkpoint_every*/*trace*.
    """
    options = _resolve_obs(trace, obs)
    if not isinstance(profile, str):
        base = JobSpec.coerce(profile)
        merged = dict(base.core_changes)
        merged.update(core_changes)
        core_changes = merged
        if variant == "pc":
            variant = base.variant
        if config is None:
            config = base.config
        if backend is None and base.backend:
            backend = base.backend
        if checkpoint_every == 0 and base.checkpoint_every > 0:
            checkpoint_every = base.checkpoint_every
        if contexts == 1 and base.contexts > 1:
            contexts = base.contexts
        if not scheduler and base.scheduler:
            scheduler = base.scheduler
        profile = base.workload
    core_changes = _coerce_core_changes(core_changes)
    if contexts > 1:
        if shards > 1 or checkpoint_every > 0:
            raise ValueError(
                "contexts= cannot be combined with shards=/checkpoint_every= "
                "(SMT runs are not shardable)"
            )
        if options is not None:
            raise ValueError(
                "contexts= cannot be combined with trace=/obs= "
                "(SMT contexts drive their own shared-SMAC observers)"
            )
        if bench is None:
            bench = workbench(settings, cache_dir)
        return run_smt(
            bench, profile, contexts=contexts, scheduler=scheduler,
            variant=variant, config=config, **core_changes,
        )
    if scheduler:
        raise ValueError(
            "scheduler= only applies to SMT runs; pass contexts > 1"
        )
    if shards > 1 or checkpoint_every > 0:
        if bench is not None:
            raise ValueError(
                "bench= cannot be combined with shards=/checkpoint_every= "
                "(sharded runs execute through an EngineRunner)"
            )
        runner = EngineRunner(
            settings=settings or ExperimentSettings(),
            cache_dir=cache_dir,
            workers=workers,
            obs=options,
        )
        spec = JobSpec(
            workload=profile,
            variant=variant,
            config=config,
            core_changes=tuple(sorted(core_changes.items())),
            backend=backend or "",
        )
        report = runner.run_sharded(
            spec, shards, checkpoint_every=checkpoint_every,
        )
        report.raise_on_failure()
        assert report.merged is not None
        return report.merged
    if bench is None:
        bench = workbench(settings, cache_dir)
    if options is None or options.trace_dir is None:
        return bench.run(
            profile, variant=variant, config=config, backend=backend,
            **core_changes,
        )
    tracer = options.open_tracer()
    try:
        observer = (
            EpochTimelineRecorder(tracer, label=f"{profile}/{variant}")
            if options.trace_epochs else None
        )
        return bench.run(
            profile, variant=variant, config=config, observer=observer,
            backend=backend, **core_changes,
        )
    finally:
        tracer.close()


def sweep(
    spec: Union[SweepSpec, Mapping[str, Any]],
    *,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
    job_timeout: float = 600.0,
    runner: Optional[EngineRunner] = None,
    trace: Union[str, Path, None] = None,
    obs: Optional[ObsOptions] = None,
    backend: Optional[str] = None,
    shards: int = 1,
    checkpoint_every: int = 0,
) -> List[SweepRecord]:
    """Execute a sweep *spec* and return one record per grid point.

    *spec* is a :class:`SweepSpec` (build one with
    :meth:`SweepSpec.build`) or an equivalent mapping with ``workloads``,
    ``axes`` and optionally ``variant`` keys — the same shape the service
    protocol accepts.  The grid fans out across *workers* processes
    (default ``min(4, cpus)``) sharing the persistent artifact cache;
    records come back workload-major in grid order, deterministically.

    *shards* > 1 runs every grid point through the fault-tolerant sharded
    path (:meth:`EngineRunner.run_sharded`) — long traces split at
    quiescent boundaries, failed shards retry, results stay bit-identical.
    *checkpoint_every* > 0 snapshots each job every K instructions so an
    interrupted sweep resumes instead of restarting; it composes with
    *shards* the same way it does for :func:`run`.

    *backend* runs every grid point on the named execution backend;
    ``backend="batch"`` additionally makes the engine advance the whole
    grid as one in-process numpy lockstep batch instead of fanning out
    across processes.  Results are bit-identical across backends.

    *trace* names a directory the engine (every worker process) writes
    JSONL trace files into; *obs* passes full :class:`ObsOptions`.
    Mutually exclusive; ignored if an explicit *runner* is supplied (the
    runner already carries its own obs configuration).
    """
    options = _resolve_obs(trace, obs)
    if runner is not None and options is not None:
        raise ValueError(
            "trace=/obs= cannot be combined with an explicit runner; "
            "configure EngineRunner(obs=...) instead"
        )
    if not isinstance(spec, SweepSpec):
        try:
            workloads = spec["workloads"]
            axes = dict(spec["axes"])
        except (TypeError, KeyError) as exc:
            raise TypeError(
                "spec must be a SweepSpec or a mapping with 'workloads' "
                "and 'axes' keys"
            ) from exc
        spec = SweepSpec.build(workloads, spec.get("variant", "pc"), **axes)
    if runner is None:
        runner = EngineRunner(
            settings=settings or ExperimentSettings(),
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            obs=options,
        )
    jobs = spec.to_jobs()
    if backend or checkpoint_every > 0:
        from dataclasses import replace

        jobs = [
            replace(
                job,
                backend=backend or job.backend,
                checkpoint_every=checkpoint_every or job.checkpoint_every,
            )
            for job in jobs
        ]
    if shards > 1:
        # Each grid point runs as its own sharded execution; synthesize a
        # grid-ordered report from the merged results so spec.records()
        # pairs them exactly like the unsharded path.
        merged_jobs: List[JobResult] = []
        wall_time = 0.0
        for job in jobs:
            sharded = runner.run_sharded(
                job, shards, checkpoint_every=checkpoint_every,
            )
            sharded.raise_on_failure()
            wall_time += sharded.wall_time
            merged_jobs.append(JobResult(
                spec=job,
                status="ok",
                result=sharded.merged,
                wall_time=sharded.wall_time,
            ))
        report = RunReport(
            jobs=merged_jobs, wall_time=wall_time, workers=runner.workers,
        )
    else:
        report = runner.run(jobs)
    return spec.records(report)


def tune(
    space: Union[TuneSpec, SearchSpace, Mapping[str, Any]],
    *,
    profile: str = "database",
    variant: str = "pc",
    strategy: str = "genetic",
    budget: int = 16,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    trace: Union[str, Path, None] = None,
    obs: Optional[ObsOptions] = None,
    margin: float = 0.30,
    resume: bool = True,
    contexts: int = 1,
    scheduler: str = "",
) -> TuneResult:
    """Search the design space for the lowest-EPI configuration.

    *space* is a mapping of axis values (coerced like sweep axes:
    ``{"store_queue": [16, 32, 64], "scout": ["none", "hws2"]}``), a
    built :class:`SearchSpace`, or a whole :class:`TuneSpec` (in which
    case *profile*/*variant*/*strategy*/*budget*/*seed*/*backend* are
    already part of the spec and must be left at their defaults).

    *contexts* > 1 evaluates every candidate as an SMT run (aggregate
    EPI is the optimized metric) under *scheduler* — the analytical
    pruner disengages for mix workloads, so every candidate is measured.

    *strategy* is ``"grid"`` (exhaustive, sweep order), ``"random"``
    (uniform without replacement) or ``"genetic"`` (seeded tournament
    selection + crossover + per-knob mutation); *budget* caps *measured*
    evaluations — candidates served from the artifact cache, skipped by
    the analytical pruner (within *margin* of predicted-worse), or
    replayed from a previous interrupted run are free.  Identical
    (workload, variant, candidate, settings) evaluations are measured
    exactly once across runs and strategies.

    Tuning state persists under the artifact cache after every
    generation, so a killed run re-run with the same arguments resumes
    where it stopped (``resume=False`` ignores — but still rewrites —
    that state).  *trace*/*obs* record a ``tune_generation`` span per
    batch in the usual JSONL trace.

    Returns a :class:`TuneResult`; see ``result.best_knobs``,
    ``result.best_epi_per_1000`` and ``result.summary()``.
    """
    options = _resolve_obs(trace, obs)
    if isinstance(space, TuneSpec):
        spec = space
        if backend or contexts > 1 or scheduler:
            from dataclasses import replace

            spec = replace(
                spec,
                backend=backend or spec.backend,
                contexts=contexts if contexts > 1 else spec.contexts,
                scheduler=scheduler or spec.scheduler,
            )
    else:
        spec = TuneSpec.build(
            profile, space, variant=variant, strategy=strategy,
            budget=budget, seed=seed, backend=backend or "",
            contexts=contexts, scheduler=scheduler,
        )
    return run_tune(
        spec,
        settings=settings,
        cache_dir=cache_dir,
        workers=workers,
        obs=options,
        margin=margin,
        resume=resume,
    )


def shard_plan(
    profile: str,
    shards: int = 4,
    *,
    variant: str = "pc",
    config: Optional[SimulationConfig] = None,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    bench: Optional[Workbench] = None,
    **core_changes: Any,
) -> ShardPlan:
    """The deterministic shard plan a sharded :func:`run` would use.

    Probes the simulation's quiescent epoch boundaries (cached per
    configuration + trace) and returns the :class:`ShardPlan` — inspect
    ``plan.shards`` for the spans, ``plan.shard_count`` for how many
    shards the trace actually supports (boundary-starved traces yield
    fewer than requested, never unsafe cuts).
    """
    if bench is None:
        bench = workbench(settings, cache_dir)
    spec = JobSpec(
        workload=profile,
        variant=variant,
        config=config,
        core_changes=tuple(sorted(core_changes.items())),
    )
    return shard_plan_for(bench, spec, shards)


def resume(
    job_or_token: Union[JobSpec, str],
    *,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
) -> JobResult:
    """Resume a checkpointed job from its latest persisted checkpoint.

    Accepts either the original :class:`JobSpec` (with *settings* matching
    the original run) or the resume *token* a sharded/checkpointed run
    reported — the token's stored record carries the spec and settings, so
    ``api.resume(token)`` needs nothing else beyond the same *cache_dir*.

    The job re-executes through the engine; if a verified checkpoint
    exists it restarts from that snapshot (``JobResult.resumed_pos`` tells
    you where), otherwise it runs from the beginning.  A corrupt
    checkpoint raises :class:`repro.errors.CheckpointCorruptError` when
    resuming by token, and is silently discarded (fresh start) when
    resuming by spec.
    """
    if isinstance(job_or_token, JobSpec):
        spec = job_or_token
        if spec.checkpoint_every <= 0:
            raise ValueError(
                "the job spec was never checkpointed "
                "(checkpoint_every == 0); there is nothing to resume from"
            )
    else:
        directory = resolve_cache_dir(cache_dir)
        if directory is None:
            raise ValueError(
                "resuming from a token requires a persistent cache_dir"
            )
        store = CheckpointStore(ArtifactCache(directory))
        record = store.load_record(str(job_or_token))
        if record is None:
            raise KeyError(
                f"no checkpoint stored under token "
                f"{str(job_or_token)[:16]}... in {directory}"
            )
        record.verify()
        spec = record.spec
        settings = record.settings
    runner = EngineRunner(
        settings=settings or ExperimentSettings(),
        cache_dir=cache_dir,
        workers=workers if workers is not None else 1,
    )
    report = runner.run([spec])
    report.raise_on_failure()
    return report.jobs[0]


def connect(
    url: str,
    *,
    timeout: float = 30.0,
    retries: int = 3,
    backoff: float = 0.1,
) -> ServiceClient:
    """A client for a running simulation service daemon.

    The returned :class:`ServiceClient` speaks the versioned wire protocol
    and mirrors this module's verbs: ``submit`` (and the
    ``submit_sweep``/``submit_simulate``/``submit_figure`` conveniences),
    ``result`` and ``cancel``.
    """
    return ServiceClient(
        url, timeout=timeout, retries=retries, backoff=backoff,
    )
