"""The canonical ECM-style analytical EPI model — the ``estimate`` verb.

One model, three consumers, zero simulation:

- :func:`epochs_per_inst` — the base epochs-per-instruction prediction
  from published workload statistics.  The fleet's routing cost model
  (:mod:`repro.fleet.cost`) charges jobs by it and the tuner's pruner
  builds on it; both now import it from here, so the model can never
  fork between the router and the pruner again.
- :func:`predicted_epi_per_1000` — the base model extended with
  per-knob sensitivity scales (store prefetch, SB/SQ sizing, coalescing,
  consistency, SLE, scouting, window sizing).  Only candidate *ordering*
  matters to the pruner, so the scales are calibrated gentle (see the
  margin argument in the docstring below).
- :func:`estimate` — the user-facing verb behind ``api.estimate``,
  ``mlpsim estimate`` and the service ``estimate`` job kind.  It anchors
  the model's arbitrary unit to measured EPI with per-workload
  calibration scales fitted once against the golden-fixture runs
  (default config, ``warmup=3000 measure=9000 seed=13 calibrate=False``
  — the settings ``tests/test_golden_window.py`` pins), and returns a
  full :class:`EpiEstimate` in well under a millisecond.

Accuracy contract: at the anchor point (default config on a golden
fixture) the calibrated estimate reproduces measured EPI exactly by
construction; away from it the knob scales are trend-calibrated, so the
documented validation margin is :data:`VALIDATION_MARGIN` (25%) for
single-knob excursions on the committed fixtures —
``tests/test_estimate.py`` and the CI sanity gate enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from .config import ConsistencyModel, CoreConfig, ScoutMode, StorePrefetchMode
from .engine import serialize
from .workloads import WORKLOADS, WorkloadProfile

__all__ = [
    "VALIDATION_MARGIN",
    "EpiEstimate",
    "epochs_per_inst",
    "estimate",
    "predicted_epi_per_1000",
]

#: Documented accuracy bound of the calibrated estimate vs measured EPI
#: on the golden fixtures (default config and single-knob excursions).
VALIDATION_MARGIN = 0.25

#: Per-workload anchors tying the model's arbitrary unit to measured
#: EPI/1000: ``measured / model`` at the golden-fixture settings
#: (default core config, pc variant).  Workloads without an anchor (a
#: custom profile) report the raw model value with scale 1.0.
_CALIBRATION = {
    "database": 11.830469618,
    "tpcw": 6.298723077,
    "specjbb": 5.171513741,
    "specweb": 5.286004341,
}

# ---------------------------------------------------------------- base --


def epochs_per_inst(profile: WorkloadProfile) -> float:
    """Predicted epochs per instruction from profile statistics.

    Serializing instructions (locks/membars) each close an epoch;
    clustered store misses close roughly one epoch per burst.  Quiet
    phases stretch epochs (stores drain under computation), modelled by
    discounting the store term by the quiet fraction.
    """
    lock_epochs = profile.locks_per_1000 / 1000.0
    store_burst_epochs = (
        (profile.store_miss_per_100 / 100.0)
        / max(1.0, profile.store_burst_mean)
    ) * (1.0 - profile.quiet_fraction)
    return lock_epochs + store_burst_epochs


# ------------------------------------------------------- knob extension --

#: Scale on the whole epoch estimate per scout mode (hws2 also covers
#: SQ-full stalls, the paper's novel trigger — the largest discount).
#: Scouting on/off is the one knob whose measured effect (~30-40% on the
#: commercial profiles) exceeds the tuner's pruning margin; the spread
#: *between* scout modes is kept small because measurement ranks them
#: within a few percent of each other.
_SCOUT_SCALE = {
    ScoutMode.NONE: 1.0,
    ScoutMode.HWS0: 0.76,
    ScoutMode.HWS1: 0.74,
    ScoutMode.HWS2: 0.72,
}

#: Scale on the store-burst epoch term per store-prefetch mode (measured
#: sp0 -> sp1 is ~6% of total EPI; sp2 adds little on these profiles).
_PREFETCH_SCALE = {
    StorePrefetchMode.NONE: 1.0,
    StorePrefetchMode.AT_RETIRE: 0.82,
    StorePrefetchMode.AT_EXECUTE: 0.76,
}


def predicted_epi_per_1000(
    profile: WorkloadProfile, knobs: Mapping[str, Any],
) -> float:
    """Analytically predicted EPI/1000 insts for *knobs* on *profile*.

    Knobs not present in *knobs* take their :class:`CoreConfig` defaults,
    so partial candidates (a space over two knobs) predict sensibly.

    Exponents and caps are deliberately gentle: measurement puts each
    sizing knob at a few percent of total EPI, so its predicted spread
    must stay well inside the tuner's pruning margin — that is what
    guarantees the true optimum is never pruned (pinned by a
    driver-level exhaustive-space property test in the tune suite).
    """
    defaults = CoreConfig()

    def knob(name: str) -> Any:
        return knobs.get(name, getattr(defaults, name))

    lock = profile.locks_per_1000 / 1000.0
    store = epochs_per_inst(profile) - lock

    store *= _PREFETCH_SCALE.get(knob("store_prefetch"), 1.0)
    sb = max(1, int(knob("store_buffer")))
    store *= min(1.25, (defaults.store_buffer / sb) ** 0.1)
    sq = max(1, int(knob("store_queue")))
    store *= min(1.15, (defaults.store_queue / sq) ** 0.05)
    cb = int(knob("coalesce_bytes"))
    if cb == 0:
        store *= 1.1
    else:
        store *= min(1.15, (defaults.coalesce_bytes / cb) ** 0.05)
    if bool(knob("perfect_stores")):
        store *= 0.6

    if knob("consistency") == ConsistencyModel.WC:
        lock *= 0.85
        store *= 0.95
    if bool(knob("sle")):
        lock *= 0.85
    if bool(knob("prefetch_past_serializing")):
        lock *= 0.9

    total = (lock + store) * _SCOUT_SCALE.get(knob("scout"), 1.0)
    rob = max(1, int(knob("rob")))
    total *= (defaults.rob / rob) ** 0.05
    window = max(1, int(knob("issue_window")))
    total *= (defaults.issue_window / window) ** 0.02
    return 1000.0 * total


# ------------------------------------------------------------- the verb --


@dataclass(frozen=True)
class EpiEstimate:
    """One analytical EPI prediction — no trace read, no simulation run."""

    workload: str
    variant: str
    #: Calibrated prediction in the simulator's figure unit.
    predicted_epi_per_1000: float
    #: Raw model output before the per-workload anchor scale.
    model_epi_per_1000: float
    #: The anchor scale applied (1.0 for unanchored custom profiles).
    calibration_scale: float
    knobs: Tuple[Tuple[str, Any], ...] = ()
    contexts: int = 1

    def summary(self) -> str:
        knobs = " ".join(
            f"{name}={getattr(value, 'value', value)}"
            for name, value in self.knobs
        )
        return (
            f"estimate {self.workload} [{self.variant}] "
            f"EPI/1000={self.predicted_epi_per_1000:.3f} "
            f"(model={self.model_epi_per_1000:.3f} "
            f"x{self.calibration_scale:.2f}"
            + (f", contexts={self.contexts}" if self.contexts > 1 else "")
            + (f", {knobs}" if knobs else "")
            + ")"
        )


def _variant_knobs(variant: str, knobs: dict) -> dict:
    """Fold the lock-idiom variant into the knob dict the model reads."""
    folded = dict(knobs)
    if variant.startswith("wc"):
        folded.setdefault("consistency", ConsistencyModel.WC)
    if variant.endswith("_sle"):
        folded.setdefault("sle", True)
    return folded


def estimate(spec: Any = None, /, **kwargs: Any) -> EpiEstimate:
    """Predict EPI for a job spec analytically — the ``estimate`` verb.

    *spec* is anything :meth:`repro.engine.runner.JobSpec.coerce`
    accepts: a workload name, a mapping (``{"workload": "database",
    "core_changes": {...}, "contexts": 2}``) or a ``JobSpec``; keyword
    arguments build or extend the mapping form directly — job fields
    (``variant=``, ``contexts=``, ``scheduler=``...) land on the spec,
    anything else (``scout="hws2"``, ``store_queue=64``...) is a core
    knob.  Multi-context specs average the per-context component
    predictions (every context runs the same instruction count, so the
    aggregate EPI is the mean).
    """
    import dataclasses as _dc

    from .engine.runner import JobSpec

    if isinstance(spec, str):
        kwargs.setdefault("workload", spec)
        spec = None
    if spec is None:
        field_names = {f.name for f in _dc.fields(JobSpec)}
        knobs_kw = dict(kwargs.pop("core_changes", {}))
        for name in list(kwargs):
            if name not in field_names:
                knobs_kw[name] = kwargs.pop(name)
        if knobs_kw:
            kwargs["core_changes"] = knobs_kw
        spec = kwargs
    elif kwargs:
        raise ValueError("pass either a spec or keyword fields, not both")
    job = JobSpec.coerce(spec)
    knobs = _variant_knobs(job.variant, dict(job.core_changes))
    from .workloads.mixes import resolve_mix

    contexts = max(1, job.contexts)
    assignments = resolve_mix(job.workload, contexts)
    model_total = 0.0
    calibrated_total = 0.0
    for name in assignments:
        profile = WORKLOADS[name]
        model = predicted_epi_per_1000(profile, knobs)
        scale = _CALIBRATION.get(name, 1.0)
        model_total += model
        calibrated_total += model * scale
    count = len(assignments)
    model_mean = model_total / count
    calibrated_mean = calibrated_total / count
    return EpiEstimate(
        workload=job.workload,
        variant=job.variant,
        predicted_epi_per_1000=calibrated_mean,
        model_epi_per_1000=model_mean,
        calibration_scale=(
            calibrated_mean / model_mean if model_mean else 1.0
        ),
        knobs=tuple(job.core_changes),
        contexts=contexts,
    )


serialize.register(EpiEstimate)
