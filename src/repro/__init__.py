"""repro: Store Memory-Level Parallelism Optimizations for Commercial
Applications (MICRO 2005) — a full reproduction.

The package implements the paper's epoch MLP model and its evaluation
vehicle MLPsim, together with every substrate the study depends on:

- an abstract SPARC/PowerPC-flavoured trace ISA (:mod:`repro.isa`) with
  binary trace IO (:mod:`repro.trace`),
- a cache hierarchy with MESI coherence and the Store Miss Accelerator
  (:mod:`repro.memory`),
- a gshare/BTB/RAS front end (:mod:`repro.frontend`),
- lock detection, PC->WC lock-idiom rewriting and Speculative Lock Elision
  (:mod:`repro.locks`),
- synthetic commercial-workload generators calibrated to the paper's
  Table 1 (:mod:`repro.workloads`),
- cross-chip sharing traffic (:mod:`repro.multiproc`),
- the epoch MLP simulator with store buffer/queue modelling, store
  prefetching, consistency models and Hardware Scout (:mod:`repro.core`),
- result analysis (:mod:`repro.analysis`) and the table/figure
  reproduction harness (:mod:`repro.harness`).

Quickstart (see :mod:`repro.api` for the full front door)::

    from repro import api

    result = api.run("database")             # default paper configuration
    print(result.summary())
    print(result.epi_per_1000)               # the paper's figure unit
"""

from . import api
from .config import (
    BranchPredictorConfig,
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    MemoryConfig,
    ScoutMode,
    SimulationConfig,
    SmacConfig,
    StorePrefetchMode,
    SystemConfig,
)
from .core import (
    MlpSimulator,
    SimulationResult,
    TerminationCondition,
    TriggerKind,
    simulate,
)
from .errors import (
    CalibrationError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from .harness.experiment import ExperimentSettings
from .isa import Instruction, InstructionClass
from .memory import MemorySystem, StoreMissAccelerator, annotate_trace
from .workloads import WORKLOADS, WorkloadGenerator, WorkloadProfile

__version__ = "2.0.0"

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CalibrationError",
    "ConfigError",
    "ConsistencyModel",
    "CoreConfig",
    "ExperimentSettings",
    "Instruction",
    "InstructionClass",
    "MemoryConfig",
    "MemorySystem",
    "MlpSimulator",
    "ReproError",
    "ScoutMode",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SmacConfig",
    "StoreMissAccelerator",
    "StorePrefetchMode",
    "SystemConfig",
    "TerminationCondition",
    "TraceError",
    "TriggerKind",
    "WORKLOADS",
    "WorkloadGenerator",
    "WorkloadProfile",
    "annotate_trace",
    "api",
    "simulate",
]

# The pre-v2 ``repro.Workbench`` import alias was removed per the
# DESIGN.md timeline: construct one with ``repro.api.workbench()``, or
# import the class from ``repro.harness.experiment`` for extension.
