"""A fully associative translation lookaside buffer.

The paper's configuration includes a 2K-entry shared TLB.  TLB misses do not
participate in the epoch MLP model (they are serviced on chip by the
hardware table walker in the modelled machine), so the TLB here exists for
completeness of the substrate and for workload diagnostics: a synthetic
workload whose footprint blows the TLB would not be credible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Tlb:
    """Fully associative, LRU-replaced page translation cache."""

    def __init__(self, entries: int, page_bytes: int) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        if page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self._entries = entries
        self._page_shift = page_bytes.bit_length() - 1
        # Python dicts preserve insertion order; reinsertion = move-to-MRU.
        self._pages: dict[int, None] = {}
        self.stats = TlbStats()

    @property
    def capacity(self) -> int:
        return self._entries

    def access(self, address: int) -> bool:
        """Translate *address*; return True on TLB hit."""
        page = address >> self._page_shift
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self._entries:
            oldest = next(iter(self._pages))
            del self._pages[oldest]
        self._pages[page] = None
        return False

    def occupancy(self) -> int:
        return len(self._pages)
