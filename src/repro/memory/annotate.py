"""One-pass miss classification of a trace.

The epoch MLP simulator (:mod:`repro.core.mlpsim`) is swept across dozens of
core configurations per figure, but the *miss stream* depends only on the
trace and the memory-side configuration.  ``annotate_trace`` therefore runs
the memory hierarchy, branch predictor and sharing model exactly once and
attaches an :class:`AccessInfo` to every measured instruction; the simulator
then replays the annotated trace cheaply under any core configuration.

This mirrors the paper's methodology split: MLPsim consumes a trace plus
microarchitecture parameters, with cache behaviour resolved up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Tuple

from ..frontend import BranchPredictor
from ..isa import Instruction
from ..isa.opcodes import InstructionClass, is_control
from .hierarchy import MemorySystem


class CoherenceTicker(Protocol):
    """Anything that injects remote coherence traffic between instructions.

    Structurally matched by :class:`repro.multiproc.MultiChipSystem`; kept as
    a protocol so the memory package does not depend on the multiprocessor
    package.
    """

    memory: MemorySystem

    def tick(self) -> None: ...


@dataclass(slots=True, frozen=True)
class AccessInfo:
    """Core-configuration-independent classification of one instruction.

    ``inst_miss``    — its fetch missed the L2 (off-chip instruction miss).
    ``data_miss``    — its data access missed the L2 (off-chip load/store).
    ``smac_hit``     — store miss whose latency the SMAC hides.
    ``upgrade``      — store hit the L2 in Shared state (ownership-only miss).
    ``mispredicted`` — control transfer the front end got wrong.
    """

    inst_miss: bool = False
    data_miss: bool = False
    smac_hit: bool = False
    upgrade: bool = False
    mispredicted: bool = False


#: The simulator's input form: measured instructions with their classification.
AnnotatedTrace = List[Tuple[Instruction, AccessInfo]]

_NO_ACCESS = AccessInfo()

#: Interning table for the ≤32 possible flag combinations.  Annotated
#: traces are held for the lifetime of a sweep (and cached across sweep
#: points by the harness/engine caches), so sharing one immutable record
#: per classification keeps millions of per-instruction annotations from
#: each carrying their own object.
_INTERNED: dict = {}


def annotate_trace(
    trace: Iterable[Instruction],
    memory: MemorySystem,
    predictor: BranchPredictor | None = None,
    system: CoherenceTicker | None = None,
    warmup: int = 0,
) -> AnnotatedTrace:
    """Classify every instruction of *trace* against *memory*.

    The first *warmup* instructions prime the caches, predictor and SMAC;
    their classifications are discarded and all statistics counters are
    reset at the warmup boundary, mirroring the paper's warm-then-measure
    methodology.  When *system* is given, remote coherence traffic is
    interleaved between local instructions.
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if system is not None and system.memory is not memory:
        raise ValueError("system must wrap the same MemorySystem being annotated")

    annotated: AnnotatedTrace = []
    index = 0
    for inst in trace:
        if system is not None:
            system.tick()
        if index == warmup:
            memory.reset_stats()
            if predictor is not None:
                predictor.stats.reset()
        fetch = memory.fetch(inst.pc)
        info = _classify(inst, fetch.off_chip, memory, predictor)
        if index >= warmup:
            annotated.append((inst, info))
        index += 1
    return annotated


def _classify(
    inst: Instruction,
    inst_miss: bool,
    memory: MemorySystem,
    predictor: BranchPredictor | None,
) -> AccessInfo:
    data_miss = False
    smac_hit = False
    upgrade = False
    mispredicted = False
    kind = inst.kind
    if kind is InstructionClass.CAS:
        # casa performs a load and a store atomically to the same line.
        load_outcome = memory.load(inst.address)
        store_outcome = memory.store(inst.address)
        data_miss = load_outcome.off_chip or store_outcome.off_chip
        smac_hit = store_outcome.smac_hit
        upgrade = store_outcome.upgrade
    elif inst.is_store:
        outcome = memory.store(inst.address)
        data_miss = outcome.off_chip
        smac_hit = outcome.smac_hit
        upgrade = outcome.upgrade
    elif inst.is_load:
        outcome = memory.load(inst.address)
        data_miss = outcome.off_chip
    elif is_control(kind) and predictor is not None:
        mispredicted = predictor.observe(inst)
    if not (inst_miss or data_miss or smac_hit or upgrade or mispredicted):
        return _NO_ACCESS
    key = (inst_miss, data_miss, smac_hit, upgrade, mispredicted)
    info = _INTERNED.get(key)
    if info is None:
        info = AccessInfo(
            inst_miss=inst_miss,
            data_miss=data_miss,
            smac_hit=smac_hit,
            upgrade=upgrade,
            mispredicted=mispredicted,
        )
        _INTERNED[key] = info
    return info
