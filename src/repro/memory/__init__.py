"""Cache-hierarchy substrate.

Implements the paper's memory system: private write-through no-write-allocate
L1 instruction/data caches, a shared write-back L2, a TLB, MESI line states
for cross-chip coherence, and the Store Miss Accelerator (SMAC).

The hierarchy's job in this reproduction is *miss classification*: given an
instruction stream it decides which fetches, loads and stores go off chip.
:func:`~repro.memory.annotate.annotate_trace` performs that classification
once per (trace, memory configuration) pair so that the epoch simulator can
re-run cheaply across core configurations.
"""

from .annotate import AccessInfo, AnnotatedTrace, annotate_trace
from .cache import CacheLine, SetAssociativeCache
from .coherence import MesiState
from .hierarchy import AccessOutcome, HitLevel, MemorySystem
from .replacement import LruPolicy, RandomPolicy, make_policy
from .smac import SmacProbe, StoreMissAccelerator
from .tlb import Tlb

__all__ = [
    "AccessInfo",
    "AccessOutcome",
    "AnnotatedTrace",
    "CacheLine",
    "HitLevel",
    "LruPolicy",
    "MemorySystem",
    "MesiState",
    "RandomPolicy",
    "SetAssociativeCache",
    "SmacProbe",
    "StoreMissAccelerator",
    "Tlb",
    "annotate_trace",
    "make_policy",
]
