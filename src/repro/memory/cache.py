"""A generic set-associative cache with pluggable replacement.

Addresses are mapped line -> set -> way in the usual way.  Lines carry a
MESI state so the same structure serves the coherent L2 and the (stateless,
always-Exclusive-or-Invalid) L1s.  The cache never models data contents —
only presence and state — which is all miss classification needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..config import CacheConfig
from .coherence import MesiState
from .replacement import ReplacementPolicy, make_policy


@dataclass(slots=True)
class CacheLine:
    """Presence/state record for one cached line."""

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    state: MesiState = MesiState.INVALID


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, split by access intent."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    snoop_invalidates: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.read_hits = self.read_misses = 0
        self.write_hits = self.write_misses = 0
        self.evictions = self.writebacks = self.snoop_invalidates = 0


class SetAssociativeCache:
    """Set-associative cache tracking line presence and MESI state."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(config.replacement, config.associativity)
            for _ in range(config.num_sets)
        ]
        self.stats = CacheStats()

    # -- address mapping ---------------------------------------------------

    def line_address(self, address: int) -> int:
        """Truncate *address* to its line base."""
        return address & ~(self.config.line_bytes - 1)

    def _index(self, address: int) -> Tuple[int, int]:
        line_number = address >> self._line_shift
        return line_number & self._set_mask, line_number >> (
            self._set_mask.bit_length()
        )

    # -- core operations ----------------------------------------------------

    def lookup(self, address: int, write: bool = False) -> Optional[CacheLine]:
        """Access the cache; return the line on hit (recency updated)."""
        set_index, tag = self._index(address)
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                self._policies[set_index].touch(way)
                if write:
                    line.dirty = True
                    line.state = MesiState.MODIFIED
                    self.stats.write_hits += 1
                else:
                    self.stats.read_hits += 1
                return line
        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        return None

    def probe(self, address: int) -> Optional[CacheLine]:
        """Check presence without recency or counter updates (for snoops)."""
        set_index, tag = self._index(address)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def fill(
        self,
        address: int,
        state: MesiState = MesiState.EXCLUSIVE,
        dirty: bool = False,
    ) -> Optional[Tuple[int, CacheLine]]:
        """Install a line; return ``(evicted_line_address, line_copy)`` if a
        valid line had to be displaced (for writeback / SMAC hand-off)."""
        set_index, tag = self._index(address)
        ways = self._sets[set_index]
        policy = self._policies[set_index]
        # Re-fill of an already-present line just updates state.
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                line.state = state
                line.dirty = line.dirty or dirty
                policy.touch(way)
                return None
        # Prefer an invalid way.
        victim_way = next(
            (way for way, line in enumerate(ways) if not line.valid), None
        )
        evicted: Optional[Tuple[int, CacheLine]] = None
        if victim_way is None:
            victim_way = policy.victim()
            victim = ways[victim_way]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
            evicted_address = self._rebuild_address(set_index, victim.tag)
            evicted = (
                evicted_address,
                CacheLine(victim.tag, True, victim.dirty, victim.state),
            )
        line = ways[victim_way]
        line.tag = tag
        line.valid = True
        line.dirty = dirty
        line.state = state
        policy.reset(victim_way)
        return evicted

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Drop a line (snoop); return a copy of what was there, if valid."""
        set_index, tag = self._index(address)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                copy = CacheLine(line.tag, True, line.dirty, line.state)
                line.valid = False
                line.dirty = False
                line.state = MesiState.INVALID
                self.stats.snoop_invalidates += 1
                return copy
        return None

    def _rebuild_address(self, set_index: int, tag: int) -> int:
        line_number = (tag << self._set_mask.bit_length()) | set_index
        return line_number << self._line_shift

    # -- introspection -------------------------------------------------------

    def resident_lines(self) -> Iterator[int]:
        """Yield line addresses of every valid line (testing/diagnostics)."""
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    yield self._rebuild_address(set_index, line.tag)

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(1 for _ in self.resident_lines())
