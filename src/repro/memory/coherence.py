"""MESI line states and transitions.

The reproduction models a multi-chip system in which each chip's L2 keeps
MESI state per line.  Remote activity arrives as *snoops* injected by the
sharing model (:mod:`repro.multiproc.sharing`); the transitions here decide
whether a snoop invalidates or downgrades a locally cached line and whether
a writeback is required.  The paper assumes MESI and notes the SMAC extends
trivially to MOESI; we implement MESI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MesiState(enum.Enum):
    """Classic MESI stable states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class SnoopResult:
    """Outcome of applying a snoop to a line in a given state."""

    next_state: MesiState
    writeback: bool


def on_local_read_fill(shared_elsewhere: bool) -> MesiState:
    """State for a line filled by a local load miss."""
    return MesiState.SHARED if shared_elsewhere else MesiState.EXCLUSIVE


def on_local_write(state: MesiState) -> MesiState:
    """State after a local store writes a cached line.

    A store to an S line requires an upgrade (invalidate others) first; the
    caller accounts for that latency.  The resulting state is always M.
    """
    if state is MesiState.INVALID:
        raise ValueError("cannot write an invalid line; fill it first")
    return MesiState.MODIFIED


def on_snoop_read(state: MesiState) -> SnoopResult:
    """Remote load observed for a locally cached line."""
    if state is MesiState.MODIFIED:
        return SnoopResult(MesiState.SHARED, writeback=True)
    if state in (MesiState.EXCLUSIVE, MesiState.SHARED):
        return SnoopResult(MesiState.SHARED, writeback=False)
    return SnoopResult(MesiState.INVALID, writeback=False)


def on_snoop_write(state: MesiState) -> SnoopResult:
    """Remote store (request-to-own) observed for a locally cached line."""
    if state is MesiState.MODIFIED:
        return SnoopResult(MesiState.INVALID, writeback=True)
    return SnoopResult(MesiState.INVALID, writeback=False)


# ---------------------------------------------------------------------------
# MOESI extension
# ---------------------------------------------------------------------------
#
# The paper notes the SMAC "can be easily extended to the MOESI protocol".
# The Owned state lets a modified line be shared without an eager memory
# writeback: the owner supplies data to readers and writes back only on
# eviction.  The MOESI transitions below are provided for protocol studies;
# the default hierarchy runs MESI.

class MoesiState(enum.Enum):
    """MOESI stable states."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class MoesiSnoopResult:
    next_state: MoesiState
    writeback: bool
    supplies_data: bool


def moesi_on_snoop_read(state: MoesiState) -> MoesiSnoopResult:
    """Remote load under MOESI: a dirty owner supplies data and keeps it
    dirty in Owned state — no memory writeback."""
    if state is MoesiState.MODIFIED:
        return MoesiSnoopResult(MoesiState.OWNED, writeback=False,
                                supplies_data=True)
    if state is MoesiState.OWNED:
        return MoesiSnoopResult(MoesiState.OWNED, writeback=False,
                                supplies_data=True)
    if state in (MoesiState.EXCLUSIVE, MoesiState.SHARED):
        return MoesiSnoopResult(MoesiState.SHARED, writeback=False,
                                supplies_data=False)
    return MoesiSnoopResult(MoesiState.INVALID, writeback=False,
                            supplies_data=False)


def moesi_on_snoop_write(state: MoesiState) -> MoesiSnoopResult:
    """Remote request-to-own under MOESI: dirty holders supply data and
    invalidate; memory is written only if nobody adopts the line."""
    if state in (MoesiState.MODIFIED, MoesiState.OWNED):
        return MoesiSnoopResult(MoesiState.INVALID, writeback=False,
                                supplies_data=True)
    return MoesiSnoopResult(MoesiState.INVALID, writeback=False,
                            supplies_data=False)


def moesi_on_eviction(state: MoesiState) -> bool:
    """True when evicting a line in *state* requires a memory writeback.

    Both M and O lines hold the only valid copy of the data.  This is the
    hand-off point to the SMAC: the writeback surrenders the data while the
    accelerator retains the ownership bit.
    """
    return state in (MoesiState.MODIFIED, MoesiState.OWNED)
