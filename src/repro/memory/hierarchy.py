"""The per-core memory system: L1I + L1D + shared L2 (+ optional SMAC).

Write policies follow the paper's Section 2: the L1 data cache is
write-through and no-write-allocate, so a store's performance is determined
entirely by the shared L2; the L2 is write-back and write-allocate with MESI
state per line.  Cross-chip coherence arrives through :meth:`snoop_store` /
:meth:`snoop_load`, injected by the sharing model.

A store that misses the L2 (or hits it in Shared state and therefore needs a
cross-chip upgrade) is an *off-chip store miss*.  If a SMAC is configured and
owns the line, the store is accelerated: it still fetches data in the
background but commits without exposing the off-chip latency.  A single-chip
system (``single_chip=True``) behaves as if every store miss hits the SMAC,
because the lone L2 implicitly owns all of memory (paper Section 3.3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import MemoryConfig
from .cache import SetAssociativeCache
from .coherence import MesiState
from .smac import StoreMissAccelerator
from .tlb import Tlb


class HitLevel(enum.Enum):
    """Where an access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


@dataclass(frozen=True)
class AccessOutcome:
    """Classification of one memory access.

    ``off_chip`` is the property the epoch MLP model consumes.  ``smac_hit``
    marks an off-chip store miss whose invalidation penalty was hidden by the
    Store Miss Accelerator: it does not stall the store queue even though the
    data comes from memory.  ``upgrade`` marks a store that hit the L2 in
    Shared state and went off chip only for ownership.
    """

    level: HitLevel
    latency: int
    smac_hit: bool = False
    upgrade: bool = False

    @property
    def off_chip(self) -> bool:
        return self.level is HitLevel.MEMORY


@dataclass
class HierarchyStats:
    """Counts for the paper's Table 1 (per-100-instruction miss rates)."""

    instructions: int = 0
    fetches: int = 0
    fetch_l2_misses: int = 0
    loads: int = 0
    load_l2_misses: int = 0
    stores: int = 0
    store_l2_misses: int = 0
    store_upgrades: int = 0
    smac_hits: int = 0
    smac_invalidated_hits: int = 0
    smac_coherence_invalidates: int = 0

    def per_100_instructions(self, count: int) -> float:
        if self.instructions == 0:
            return 0.0
        return 100.0 * count / self.instructions

    @property
    def store_miss_rate(self) -> float:
        """Off-chip store misses per 100 instructions (Table 1 row 2)."""
        return self.per_100_instructions(self.store_l2_misses)

    @property
    def load_miss_rate(self) -> float:
        """Off-chip load misses per 100 instructions (Table 1 row 3)."""
        return self.per_100_instructions(self.load_l2_misses)

    @property
    def inst_miss_rate(self) -> float:
        """Off-chip instruction misses per 100 instructions (Table 1 row 4)."""
        return self.per_100_instructions(self.fetch_l2_misses)

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class MemorySystem:
    """One core's view of the cache hierarchy."""

    def __init__(
        self,
        config: MemoryConfig,
        single_chip: bool = False,
    ) -> None:
        self.config = config
        self.single_chip = single_chip
        self.l1i = SetAssociativeCache(config.l1i)
        self.l1d = SetAssociativeCache(config.l1d)
        self.l2 = SetAssociativeCache(config.l2)
        self.tlb = Tlb(config.tlb_entries, config.page_bytes)
        self.smac = (
            StoreMissAccelerator(config.smac) if config.smac is not None else None
        )
        self.stats = HierarchyStats()
        self._last_fetch_line = -1

    # -- instruction side ------------------------------------------------------

    def fetch(self, pc: int) -> AccessOutcome:
        """Fetch the instruction at *pc*; sequential same-line fetches hit
        the fetch buffer and never re-access the caches."""
        self.stats.instructions += 1
        line = self.l1i.line_address(pc)
        if line == self._last_fetch_line:
            return AccessOutcome(HitLevel.L1, 0)
        self._last_fetch_line = line
        self.stats.fetches += 1
        if self.l1i.lookup(line) is not None:
            return AccessOutcome(HitLevel.L1, self.config.l1_latency)
        if self.l2.lookup(line) is not None:
            self.l1i.fill(line, MesiState.EXCLUSIVE)
            return AccessOutcome(HitLevel.L2, self.config.l2_latency)
        self.stats.fetch_l2_misses += 1
        self._fill_l2(line, MesiState.EXCLUSIVE)
        self.l1i.fill(line, MesiState.EXCLUSIVE)
        return AccessOutcome(HitLevel.MEMORY, self.config.memory_latency)

    # -- data side ----------------------------------------------------------------

    def load(self, address: int) -> AccessOutcome:
        """Classify a data load."""
        self.stats.loads += 1
        self.tlb.access(address)
        line = self.l1d.line_address(address)
        if self.l1d.lookup(line) is not None:
            return AccessOutcome(HitLevel.L1, self.config.l1_latency)
        if self.l2.lookup(line) is not None:
            self.l1d.fill(line, MesiState.EXCLUSIVE)
            return AccessOutcome(HitLevel.L2, self.config.l2_latency)
        self.stats.load_l2_misses += 1
        self._fill_l2(line, MesiState.EXCLUSIVE)
        self.l1d.fill(line, MesiState.EXCLUSIVE)
        return AccessOutcome(HitLevel.MEMORY, self.config.memory_latency)

    def store(self, address: int) -> AccessOutcome:
        """Classify a data store (write-through L1, write-allocate L2)."""
        self.stats.stores += 1
        self.tlb.access(address)
        line = self.l2.line_address(address)
        # Write-through, no-write-allocate L1: update on hit, never fill.
        self.l1d.lookup(line, write=True)
        existing = self.l2.probe(line)
        if existing is not None and existing.state in (
            MesiState.MODIFIED, MesiState.EXCLUSIVE,
        ):
            self.l2.lookup(line, write=True)
            return AccessOutcome(HitLevel.L2, self.config.l2_latency)
        if existing is not None:
            # Hit in Shared state: ownership upgrade goes off chip.
            self.stats.store_l2_misses += 1
            self.stats.store_upgrades += 1
            self.l2.lookup(line, write=True)
            return AccessOutcome(
                HitLevel.MEMORY, self.config.memory_latency, upgrade=True
            )
        # True L2 store miss.
        self.stats.store_l2_misses += 1
        smac_hit = self.single_chip
        if not smac_hit and self.smac is not None:
            probe = self.smac.probe_store(address)
            smac_hit = probe.hit
            if probe.invalidated_hit:
                self.stats.smac_invalidated_hits += 1
        if smac_hit:
            self.stats.smac_hits += 1
        self._fill_l2(line, MesiState.MODIFIED, dirty=True)
        return AccessOutcome(
            HitLevel.MEMORY, self.config.memory_latency, smac_hit=smac_hit
        )

    # -- coherence side -----------------------------------------------------------

    def snoop_store(self, address: int) -> None:
        """A remote chip wrote *address*: invalidate everywhere."""
        line = self.l2.line_address(address)
        self.l2.invalidate(line)
        self.l1d.invalidate(line)
        self.l1i.invalidate(line)
        if self.smac is not None and self.smac.snoop(address):
            self.stats.smac_coherence_invalidates += 1

    def snoop_load(self, address: int) -> None:
        """A remote chip read *address*: downgrade, surrender SMAC ownership."""
        line = self.l2.line_address(address)
        cached = self.l2.probe(line)
        if cached is not None:
            cached.state = MesiState.SHARED
            cached.dirty = False  # writeback implied on M->S
        if self.smac is not None and self.smac.snoop(address):
            self.stats.smac_coherence_invalidates += 1

    # -- helpers --------------------------------------------------------------------

    def _fill_l2(self, line: int, state: MesiState, dirty: bool = False) -> None:
        evicted = self.l2.fill(line, state, dirty)
        if evicted is None:
            return
        evicted_address, victim = evicted
        # An L1 copy of an evicted L2 line violates inclusion; drop it.
        self.l1d.invalidate(evicted_address)
        self.l1i.invalidate(evicted_address)
        if victim.state is MesiState.MODIFIED and self.smac is not None:
            # Data goes to memory; ownership is retained in the SMAC.
            self.smac.on_modified_evict(evicted_address)

    def reset_stats(self) -> None:
        """Clear all counters (end of warmup)."""
        self.stats.reset()
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()
        self.tlb.stats.reset()
        if self.smac is not None:
            self.smac.stats.reset()
