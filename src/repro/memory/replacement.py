"""Replacement policies for set-associative structures.

A policy manages one set's recency state.  The cache tells the policy when a
way is touched, filled or invalidated; the policy answers victim queries.
All policies are deterministic given their construction arguments so that
simulations are reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigError


class ReplacementPolicy(ABC):
    """Recency bookkeeping for one cache set of ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ConfigError("a set needs at least one way")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on *way*."""

    @abstractmethod
    def victim(self) -> int:
        """Return the way to evict next."""

    @abstractmethod
    def reset(self, way: int) -> None:
        """Record that *way* was filled with a new line (most recent)."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used ordering (the paper's policy)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Recency order: index 0 is LRU, last is MRU.
        self._order = list(range(ways))

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def reset(self, way: int) -> None:
        self.touch(way)


class RandomPolicy(ReplacementPolicy):
    """Seeded pseudo-random victim selection (ablation baseline)."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def reset(self, way: int) -> None:
        pass


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU: the common hardware approximation of LRU.

    Requires a power-of-two way count.  Included for ablations comparing the
    paper's true-LRU assumption against realizable hardware.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ConfigError("tree PLRU requires a power-of-two way count")
        self._bits = [False] * max(ways - 1, 1)

    def touch(self, way: int) -> None:
        node = 0
        span = self.ways
        while span > 1:
            span //= 2
            go_right = way % (span * 2) >= span
            self._bits[node] = not go_right  # point away from the touched half
            node = 2 * node + (2 if go_right else 1)

    def victim(self) -> int:
        node = 0
        way = 0
        span = self.ways
        while span > 1:
            span //= 2
            if self._bits[node]:
                way += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1
        return way

    def reset(self, way: int) -> None:
        self.touch(way)


_POLICIES = {
    "lru": LruPolicy,
    "random": RandomPolicy,
    "plru": TreePlruPolicy,
}


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Instantiate a policy by configuration name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return factory(ways)
