"""The Store Miss Accelerator (paper Section 3.3.3).

The SMAC decouples *ownership* of a memory line from its *data*.  When the
L2 evicts a Modified line, the data goes to memory but the exclusive-ownership
state is retained in the SMAC at a cost of roughly one bit per L2 line.  A
later store that misses the L2 but hits the SMAC already owns the line, so it
can be made globally visible immediately — the store commits without paying
the cross-chip invalidation penalty, exactly as in a single-chip system.

Geometry: a heavily sub-blocked set-associative cache.  Each entry tags one
large region (default 2048 bytes) and holds one E-state bit per L2-line-sized
sub-block (default 64 bytes, i.e. 32 bits per entry).  A snoop from another
chip that hits the SMAC invalidates the sub-block (ownership has moved).

For the paper's Figure 6 the SMAC additionally tracks *tombstones*: when a
sub-block's E bit is cleared by a remote snoop, the bit position is remembered
so a later missing store to it can be counted as "hit an invalidated line" —
a store that would have been accelerated had another node not intervened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SmacConfig


@dataclass(slots=True)
class _SmacEntry:
    tag: int = 0
    valid: bool = False
    owned: int = 0        # bitmap: sub-blocks held in E state
    tombstone: int = 0    # bitmap: sub-blocks invalidated by remote snoops


@dataclass(frozen=True)
class SmacProbe:
    """Result of probing the SMAC for a missing store.

    ``hit`` means the store owns its line and skips the invalidation penalty.
    ``invalidated_hit`` means the tag matched but the specific sub-block had
    been invalidated by a remote coherence event (Figure 6's right graph).
    """

    hit: bool
    invalidated_hit: bool


@dataclass
class SmacStats:
    probes: int = 0
    hits: int = 0
    invalidated_hits: int = 0
    inserts: int = 0
    entry_evictions: int = 0
    snoop_invalidates: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def reset(self) -> None:
        self.probes = self.hits = self.invalidated_hits = 0
        self.inserts = self.entry_evictions = self.snoop_invalidates = 0


class StoreMissAccelerator:
    """Sub-blocked E-state cache accelerating off-chip store misses."""

    def __init__(self, config: SmacConfig) -> None:
        self.config = config
        self._region_shift = config.line_bytes.bit_length() - 1
        self._sub_shift = config.sub_block_bytes.bit_length() - 1
        num_sets = config.entries // config.associativity
        if num_sets & (num_sets - 1):
            # Round down to a power of two so indexing stays a mask; the
            # config validator guarantees divisibility but not power-of-two.
            num_sets = 1 << (num_sets.bit_length() - 1)
        self._set_mask = num_sets - 1
        self._sets: List[List[_SmacEntry]] = [
            [_SmacEntry() for _ in range(config.associativity)]
            for _ in range(num_sets)
        ]
        # Per-set recency: list of way indices, LRU first.
        self._recency: List[List[int]] = [
            list(range(config.associativity)) for _ in range(num_sets)
        ]
        self.stats = SmacStats()

    # -- address mapping ------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int, int]:
        region = address >> self._region_shift
        set_index = region & self._set_mask
        tag = region >> self._set_mask.bit_length()
        sub_block = (address >> self._sub_shift) & (
            self.config.sub_blocks_per_line - 1
        )
        return set_index, tag, sub_block

    def _find(self, set_index: int, tag: int) -> Optional[int]:
        for way, entry in enumerate(self._sets[set_index]):
            if entry.valid and entry.tag == tag:
                return way
        return None

    def _touch(self, set_index: int, way: int) -> None:
        order = self._recency[set_index]
        order.remove(way)
        order.append(way)

    # -- operations -------------------------------------------------------------

    def probe_store(self, address: int) -> SmacProbe:
        """Query ownership for a store that missed the L2."""
        self.stats.probes += 1
        set_index, tag, sub_block = self._locate(address)
        way = self._find(set_index, tag)
        if way is None:
            return SmacProbe(hit=False, invalidated_hit=False)
        entry = self._sets[set_index][way]
        bit = 1 << sub_block
        if entry.owned & bit:
            self.stats.hits += 1
            self._touch(set_index, way)
            # Ownership is consumed: the line moves back into the L2 in M
            # state; the SMAC bit is cleared so state is never duplicated.
            entry.owned &= ~bit
            return SmacProbe(hit=True, invalidated_hit=False)
        if entry.tombstone & bit:
            self.stats.invalidated_hits += 1
            return SmacProbe(hit=False, invalidated_hit=True)
        return SmacProbe(hit=False, invalidated_hit=False)

    def on_modified_evict(self, address: int) -> None:
        """Retain ownership of an L2 line evicted in Modified state."""
        self.stats.inserts += 1
        set_index, tag, sub_block = self._locate(address)
        way = self._find(set_index, tag)
        bit = 1 << sub_block
        if way is not None:
            entry = self._sets[set_index][way]
            entry.owned |= bit
            entry.tombstone &= ~bit
            self._touch(set_index, way)
            return
        # Allocate: reuse an invalid way or evict the set's LRU entry,
        # losing all of its retained ownership bits.
        ways = self._sets[set_index]
        way = next((w for w, e in enumerate(ways) if not e.valid), None)
        if way is None:
            way = self._recency[set_index][0]
            self.stats.entry_evictions += 1
        entry = ways[way]
        entry.tag = tag
        entry.valid = True
        entry.owned = bit
        entry.tombstone = 0
        self._touch(set_index, way)

    def snoop(self, address: int) -> bool:
        """Remote access to *address*: surrender ownership of its sub-block.

        Returns True when the snoop actually invalidated a held sub-block
        (these are the coherence-invalidate events of Figure 6's left graph).
        """
        set_index, tag, sub_block = self._locate(address)
        way = self._find(set_index, tag)
        if way is None:
            return False
        entry = self._sets[set_index][way]
        bit = 1 << sub_block
        if not entry.owned & bit:
            return False
        entry.owned &= ~bit
        entry.tombstone |= bit
        self.stats.snoop_invalidates += 1
        return True

    # -- introspection ------------------------------------------------------------

    def owned_sub_blocks(self) -> int:
        """Total sub-blocks currently held in E state."""
        return sum(
            bin(entry.owned).count("1")
            for ways in self._sets
            for entry in ways
            if entry.valid
        )
