"""Snapshot/restore of a running MLPsim simulation.

A simulation's complete machine state at an *epoch boundary* — the bottom
of the :meth:`MlpSimulator.run <repro.core.mlpsim.MlpSimulator.run>` epoch
loop, after the clock advanced and before the next window opens — is small
and explicit: the trace cursor, the epoch clock, the register scoreboard,
the replay/deferral queues, the store buffer and store queue, and the
accumulated :class:`~repro.core.results.SimulationResult`.  Everything else
(the per-epoch window bookkeeping) is rebuilt from scratch by
``WindowState.begin_epoch``, so capturing at the loop bottom needs none of
it.

:func:`capture_snapshot` deep-copies that state into an immutable
:class:`SimulatorSnapshot`; :func:`restore_simulation` rebuilds a live
``(WindowState, EpochAccountant)`` pair from one.  Restoring and re-entering
the epoch loop is bit-identical to never having stopped: every comparison
the simulator makes is either positional (``pos``-relative) or epoch-relative
(``ready > cur``, ``miss_issued_epoch < epoch``), and the snapshot preserves
both coordinate systems exactly.

:func:`is_quiescent` recognizes the stronger condition behind *shard*
boundaries: an epoch boundary where the machine carries no state forward at
all — store buffer and store queue drained, no pending ordering barrier, no
deferred or replayed work still in flight, every register usable now, and no
speculatively resolved (prefetched) trace position at or beyond the cursor.
At such a point the remaining simulation depends only on relative
comparisons, so a *fresh* simulator started on the trace suffix reproduces
it exactly — that is what lets :mod:`repro.shard` cut a trace into
independently runnable segments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import CoreConfig
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .store_unit import StoreEntry, StoreUnit, StoreUnitStats
from .window import DeferredLoad, EpochAccountant, WindowObserver, WindowState

__all__ = [
    "SNAPSHOT_VERSION",
    "SimulatorSnapshot",
    "capture_snapshot",
    "is_quiescent",
    "restore_simulation",
]

#: Bump when the captured state set changes incompatibly; restore refuses
#: snapshots from a different version rather than misinterpreting them.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SimulatorSnapshot:
    """Complete cross-epoch machine state at one epoch boundary.

    ``pos``/``cur`` are the trace cursor and epoch clock; ``resolved`` is
    the set of already-prefetched trace positions (stored sorted for a
    canonical wire form); ``replay``/``deferred_other`` are the dependent
    loads and ALU deferrals still waiting on earlier misses; ``ready`` is
    the scoreboard's per-register earliest-consumable epoch; ``sb``/``sq``
    are the store buffer/queue contents in order.  ``result`` is the
    accumulated measurement so far.  ``instructions`` records the length of
    the trace the snapshot belongs to and ``config_key`` an (opaque)
    identifier of the configuration — both are validated on restore paths
    so a snapshot can never silently resume against the wrong run.
    """

    version: int
    pos: int
    cur: int
    stagnation: int
    resolved: Tuple[int, ...]
    replay: Tuple[DeferredLoad, ...]
    deferred_other: Tuple[int, ...]
    ready: Tuple[int, ...]
    sb: Tuple[StoreEntry, ...]
    sq: Tuple[StoreEntry, ...]
    pending_barrier: bool
    store_stats: StoreUnitStats
    result: SimulationResult
    instructions: int
    config_key: str = ""


def capture_snapshot(
    state: WindowState,
    accountant: EpochAccountant,
    instructions: int,
    config_key: str = "",
) -> SimulatorSnapshot:
    """Deep-copy the live simulation state into an immutable snapshot.

    Must be called at the bottom of the epoch loop (the simulator's
    ``checkpoint_sink`` guarantees this).  Store entries and the result are
    copied because the running simulation keeps mutating them.
    """
    result = accountant.result
    return SimulatorSnapshot(
        version=SNAPSHOT_VERSION,
        pos=state.pos,
        cur=state.cur,
        stagnation=state.stagnation,
        resolved=tuple(sorted(state.resolved)),
        replay=tuple(dataclasses.replace(d) for d in state.replay),
        deferred_other=tuple(state.deferred_other),
        ready=tuple(state.scoreboard._ready),
        sb=tuple(dataclasses.replace(e) for e in state.store_unit.sb),
        sq=tuple(dataclasses.replace(e) for e in state.store_unit.sq),
        pending_barrier=state.store_unit._pending_barrier,
        store_stats=dataclasses.replace(state.store_unit.stats),
        result=dataclasses.replace(result, epochs=list(result.epochs)),
        instructions=instructions,
        config_key=config_key,
    )


def restore_simulation(
    snapshot: SimulatorSnapshot,
    core: CoreConfig,
    stagnation_limit: int,
    observer: Optional[WindowObserver] = None,
) -> Tuple[WindowState, EpochAccountant]:
    """Rebuild a live ``(WindowState, EpochAccountant)`` from *snapshot*.

    The store unit is reconstructed from *core* (its derived policy fields
    — consistency model, prefetch timing, limits — are functions of the
    configuration, not state) and then loaded with copies of the snapshot's
    buffer/queue contents and statistics.
    """
    from collections import deque

    scoreboard = RegisterScoreboard(num_registers=len(snapshot.ready))
    scoreboard._ready = list(snapshot.ready)
    unit = StoreUnit(core)
    unit.sb = deque(dataclasses.replace(e) for e in snapshot.sb)
    unit.sq = deque(dataclasses.replace(e) for e in snapshot.sq)
    unit.stats = dataclasses.replace(snapshot.store_stats)
    unit._pending_barrier = snapshot.pending_barrier
    state = WindowState(
        scoreboard=scoreboard,
        store_unit=unit,
        stagnation_limit=stagnation_limit,
        observer=observer,
        pos=snapshot.pos,
        cur=snapshot.cur,
        resolved=set(snapshot.resolved),
        replay=[dataclasses.replace(d) for d in snapshot.replay],
        deferred_other=list(snapshot.deferred_other),
        stagnation=snapshot.stagnation,
    )
    accountant = EpochAccountant(instructions=snapshot.instructions)
    accountant.result = dataclasses.replace(
        snapshot.result, epochs=list(snapshot.result.epochs),
    )
    return state, accountant


def is_quiescent(state: WindowState) -> bool:
    """True when *state* (at an epoch boundary) carries nothing forward.

    The predicate behind epoch-safe shard boundaries: store buffer and
    store queue empty with no pending barrier, no *unmatured or missing*
    deferred work (entries whose epoch already passed and that will not
    miss are dropped untouched by the next ``begin_epoch``), every register
    usable in the current epoch, and no resolved (prefetched) position at
    or beyond the cursor.  A fresh simulator started on the remaining trace
    suffix behaves identically from here: all the state the simulator
    consults from now on compares equal in both coordinate systems.
    """
    unit = state.store_unit
    if unit.sb or unit.sq or unit._pending_barrier:
        return False
    cur = state.cur
    for deferred in state.replay:
        if deferred.missing or deferred.exec_epoch > cur:
            return False
    for epoch in state.deferred_other:
        if epoch > cur:
            return False
    for epoch in state.scoreboard._ready:
        if epoch > cur:
            return False
    pos = state.pos
    for index in state.resolved:
        if index >= pos:
            return False
    return True
