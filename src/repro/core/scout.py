"""Speculative look-ahead passes: Hardware Scout and prefetch-past-serializing.

Both mechanisms walk the dynamic instruction stream beyond the point where
architectural execution is stalled, issuing prefetches for the off-chip
misses they encounter, then throw the speculative work away.  They share
runahead semantics:

- registers produced by unresolved missing loads are *poisoned*; any
  instruction reading a poisoned register is skipped and poisons its own
  destination,
- loads with poisoned address registers cannot prefetch,
- serializing instructions are ignored (scout is purely speculative),
- a mispredicted branch whose operands are poisoned ends the pass: the
  hardware would fetch down the wrong path from there.

Hardware Scout (paper Section 3.3.5) uses a budget of roughly
``miss latency x on-chip IPC`` instructions (the scout episode lasts until
the trigger's data returns).  Prefetch-past-serializing (Section 3.3.4) is
bounded by the reorder buffer, since the serializing instruction holds up
retirement.  The caller controls which miss kinds may be prefetched:
HWS0 prefetches loads and instructions, HWS1/HWS2 add stores, and the
serializer prefetch covers loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from ..isa import InstructionClass
from ..isa.opcodes import is_control
from ..memory.annotate import AnnotatedTrace
from .scoreboard import RegisterScoreboard


@dataclass
class ScoutOutcome:
    """Prefetches issued by one speculative pass."""

    loads: int = 0
    stores: int = 0
    insts: int = 0
    scanned: int = 0
    resolved: Set[int] = field(default_factory=set)

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.insts


def run_scout(
    trace: AnnotatedTrace,
    start: int,
    budget: int,
    scoreboard: RegisterScoreboard,
    current_epoch: int,
    resolved: Set[int],
    prefetch_loads: bool = True,
    prefetch_stores: bool = False,
    prefetch_insts: bool = True,
) -> ScoutOutcome:
    """Speculatively scan ``trace[start:start+budget]`` issuing prefetches.

    *resolved* is the simulator's set of already-serviced trace indices; the
    pass reads it (never prefetching twice) and reports its own additions in
    ``ScoutOutcome.resolved`` for the caller to merge.
    """
    outcome = ScoutOutcome()
    if budget <= 0:
        return outcome
    poisoned: Set[int] = set()

    def sources_poisoned(srcs: tuple[int, ...]) -> bool:
        for reg in srcs:
            if reg in poisoned:
                return True
        # Values still in flight architecturally are equally unavailable.
        return not scoreboard.is_ready(srcs, current_epoch)

    index = start
    end = min(len(trace), start + budget)
    while index < end:
        inst, info = trace[index]
        outcome.scanned += 1
        kind = inst.kind
        if (
            prefetch_insts
            and info.inst_miss
            and index not in resolved
            and index not in outcome.resolved
        ):
            outcome.resolved.add(index)
            outcome.insts += 1
        if kind in (InstructionClass.LOAD, InstructionClass.LOAD_LOCKED,
                    InstructionClass.CAS):
            if sources_poisoned(inst.reads()):
                if inst.dest >= 0:
                    poisoned.add(inst.dest)
            elif (
                prefetch_loads
                and info.data_miss
                and index not in resolved
                and index not in outcome.resolved
            ):
                outcome.resolved.add(index)
                outcome.loads += 1
                if inst.dest >= 0:
                    poisoned.add(inst.dest)  # data not available in scout
            else:
                poisoned.discard(inst.dest)
        elif kind in (InstructionClass.STORE, InstructionClass.STORE_COND):
            if (
                prefetch_stores
                and not sources_poisoned(inst.address_reads())
                and info.data_miss
                and not info.smac_hit
                and index not in resolved
                and index not in outcome.resolved
            ):
                outcome.resolved.add(index)
                outcome.stores += 1
        elif is_control(kind):
            if info.mispredicted and sources_poisoned(inst.reads()):
                break  # scout would fetch the wrong path from here
        elif kind in (InstructionClass.MEMBAR, InstructionClass.ISYNC,
                      InstructionClass.LWSYNC):
            pass  # scout is purely speculative: serialization is ignored
        else:
            if inst.dest >= 0:
                if sources_poisoned(inst.reads()):
                    poisoned.add(inst.dest)
                else:
                    poisoned.discard(inst.dest)
        index += 1
    return outcome
