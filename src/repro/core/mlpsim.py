"""MLPsim: the trace-driven epoch MLP simulator (paper Section 4.1).

The simulator consumes an *annotated* trace — instructions paired with the
core-configuration-independent miss classification produced by
:func:`repro.memory.annotate.annotate_trace` — and partitions execution into
epochs by applying the window termination conditions implied by the core
configuration and memory consistency model.

Model of time: on-chip latencies are ignored.  Every off-chip access issued
inside an epoch completes when the epoch ends.  A register written by a
missing load issued in epoch *e* is usable from epoch *e+1*; instructions
that need it occupy issue-window entries until then.  The sole place where
real time enters is the *overlap depth*: a store miss whose request has been
outstanding for a full memory latency of instructions (IPC ~ 1) with no
intervening stall completes silently — this is the paper's "missing store
fully overlapped with computation" (Table 2).

The scan enforces, in priority order per instruction:

1. ROB / issue-window / load-buffer limits (bind only while something
   blocks retirement),
2. instruction-fetch misses (stop fetch; the miss overlaps this epoch),
3. per-class semantics: stores flow through the store unit (store buffer /
   store queue / coalescing / prefetch / consistency model), serializing
   instructions drain according to the consistency model, mispredicted
   branches dependent on missing loads stop the window, loads issue or
   defer on register dependences.

Hardware Scout episodes and prefetch-past-serializing are layered on top as
speculative look-ahead passes (:mod:`repro.core.scout`).

Structure: all mutable state lives in :class:`~repro.core.window.WindowState`,
result accounting in :class:`~repro.core.window.EpochAccountant`, and each
instruction class has its own ``_handle_*`` method — see
:mod:`repro.core.window` for the decomposition rationale and the observer
hooks that let instrumentation attach without touching this hot path.

Hot path: the per-instruction scan is the throughput bottleneck of every
paper-figure sweep, so :meth:`MlpSimulator._scan_window` trades a little
handler symmetry for speed.  The four common classes (ALU-like, loads,
stores, control) are recognized with identity tests ordered by dynamic
frequency and the ALU/load/control bodies are inlined into the loop; only
the rare serializing classes go through ``self._serial_handlers``, a
dispatch table precomputed per consistency model at construction.  The
golden-result tests pin the outputs to the pre-optimization values
(``benchmarks/perf`` tracks the speed).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..config import (
    ConsistencyModel,
    CoreConfig,
    ScoutMode,
    SimulationConfig,
)
from ..errors import CheckpointCorruptError, ShardBoundaryError
from ..isa import Instruction, InstructionClass
from ..memory.annotate import AccessInfo, AnnotatedTrace
from .epoch import TerminationCondition, TriggerKind
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .scout import run_scout
from .snapshot import (
    SNAPSHOT_VERSION,
    SimulatorSnapshot,
    capture_snapshot,
    is_quiescent,
    restore_simulation,
)
from .store_unit import StoreEntry, StoreUnit
from .window import DeferredLoad, EpochAccountant, WindowObserver, WindowState

_SCOUTABLE = frozenset({
    TerminationCondition.WINDOW_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_SERIALIZE,
    TerminationCondition.OTHER_SERIALIZE,
})


class MlpSimulator:
    """Epoch MLP simulator bound to one configuration."""

    __slots__ = (
        "config",
        "core",
        "overlap_depth",
        "scout_depth",
        "observer",
        "_serial_handlers",
    )

    def __init__(
        self,
        config: SimulationConfig,
        observer: WindowObserver | None = None,
    ) -> None:
        self.config = config
        self.core: CoreConfig = config.core
        #: Instructions of computation that fully hide one off-chip latency.
        self.overlap_depth: int = config.latency_instructions
        #: Instructions one Hardware Scout episode can cover.
        self.scout_depth: int = config.scout_depth
        self.observer = observer
        # Precomputed dispatch for the serializing instruction classes.
        # The consistency model decides each class's semantics once, here,
        # instead of per instruction inside the scan loop.  All handlers
        # share the (trace, state, inst, info) signature.
        if self.core.consistency is ConsistencyModel.PC:
            self._serial_handlers = {
                InstructionClass.CAS: self._handle_serializer_pc,
                InstructionClass.MEMBAR: self._handle_serializer_pc,
                # isync waits on older instructions only under WC; in a
                # PC-configured run it executes freely.
                InstructionClass.ISYNC: self._handle_freely,
                InstructionClass.LWSYNC: self._handle_barrier,
            }
        else:
            self._serial_handlers = {
                # CAS in a WC-configured run of a TSO trace: an atomic
                # load+store without TSO's drain semantics.
                InstructionClass.CAS: self._handle_wc_cas,
                InstructionClass.MEMBAR: self._handle_barrier,
                InstructionClass.ISYNC: self._handle_isync_wc,
                InstructionClass.LWSYNC: self._handle_barrier,
            }

    # ------------------------------------------------------------------ run --

    def run(
        self,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
        *,
        resume: SimulatorSnapshot | None = None,
        stop: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_sink: Optional[
            Callable[[SimulatorSnapshot], None]
        ] = None,
        quiescent_log: Optional[List[Tuple[int, int]]] = None,
    ) -> SimulationResult:
        """Partition *trace* into epochs and return the measurements.

        The keyword-only parameters drive :mod:`repro.shard`:

        - *resume* restarts from a :class:`SimulatorSnapshot` captured by an
          earlier run over the same trace, bit-identically.
        - *stop* ends the run at a planned shard boundary: the epoch-loop
          bottom where the cursor reaches *stop*.  The boundary must be one
          this simulation actually passes through quiescently (a position
          from a shard plan), else :class:`ShardBoundaryError`.
        - *checkpoint_every* = K calls *checkpoint_sink* with a snapshot at
          the first epoch boundary at or past each multiple of K
          instructions.  The mark sequence depends only on K, so a resumed
          run checkpoints at the same positions as an uninterrupted one.
        - *quiescent_log* collects ``(pos, cur)`` at every quiescent epoch
          boundary — the probe behind shard planning.
        """
        core = self.core
        n = len(trace)
        stagnation_limit = core.store_queue + core.store_buffer + 8
        attached_observer = observer if observer is not None else self.observer
        if resume is not None:
            if resume.version != SNAPSHOT_VERSION:
                raise CheckpointCorruptError(
                    f"snapshot version {resume.version} != "
                    f"{SNAPSHOT_VERSION}"
                )
            if resume.instructions != n:
                raise CheckpointCorruptError(
                    f"snapshot belongs to a {resume.instructions}-instruction "
                    f"trace, got {n} instructions"
                )
            state, accountant = restore_simulation(
                resume, core, stagnation_limit, observer=attached_observer,
            )
        else:
            accountant = EpochAccountant(instructions=n)
            state = WindowState(
                scoreboard=RegisterScoreboard(),
                store_unit=StoreUnit(core),
                stagnation_limit=stagnation_limit,
                observer=attached_observer,
            )
        # Epoch-boundary instrumentation is cold (once per epoch, not per
        # instruction); a single flag keeps the plain path to one check.
        instrumented = (
            stop is not None or quiescent_log is not None
            or (checkpoint_every > 0 and checkpoint_sink is not None)
        )
        next_mark = 0
        if checkpoint_every > 0:
            next_mark = (state.pos // checkpoint_every + 1) * checkpoint_every

        attached = state.observer
        while True:
            state.begin_epoch()
            if attached is not None:
                attached.on_epoch_begin(state)
            self._scan_window(trace, state, accountant)
            misses = self._close_epoch(trace, state, accountant)
            state.advance_epoch()
            if (
                state.pos >= n
                and not state.replay
                and state.store_unit.all_completed(state.cur)
            ):
                break
            state.check_progress(misses)
            if instrumented:
                pos = state.pos
                if stop is not None and pos >= stop:
                    if pos != stop or not is_quiescent(state):
                        raise ShardBoundaryError(
                            f"planned shard boundary {stop} was not reached "
                            f"quiescently (cursor at {pos}); the shard plan "
                            f"does not match this trace/configuration"
                        )
                    # The unit is drained at a quiescent boundary, so
                    # finalize only copies the accumulated store statistics.
                    accountant.result.instructions = stop
                    return accountant.finalize(state.store_unit)
                if (
                    quiescent_log is not None
                    and 0 < pos < n
                    and is_quiescent(state)
                ):
                    quiescent_log.append((pos, state.cur))
                if (
                    checkpoint_every > 0
                    and checkpoint_sink is not None
                    and pos >= next_mark
                ):
                    checkpoint_sink(capture_snapshot(state, accountant, n))
                    next_mark = (
                        pos // checkpoint_every + 1
                    ) * checkpoint_every

        # Final drain: entries whose misses completed in the last epoch are
        # committed here so the bandwidth accounting covers every store.
        state.store_unit.pump(state.cur + 1)
        return accountant.finalize(state.store_unit)

    # ------------------------------------------------- external stepping --

    def new_state(
        self,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
    ) -> Tuple[WindowState, EpochAccountant]:
        """A fresh ``(state, accountant)`` pair exactly as :meth:`run`
        builds them — the entry point for externally driven simulations
        (:mod:`repro.smt`) that interleave epochs from several contexts."""
        core = self.core
        accountant = EpochAccountant(instructions=len(trace))
        state = WindowState(
            scoreboard=RegisterScoreboard(),
            store_unit=StoreUnit(core),
            stagnation_limit=core.store_queue + core.store_buffer + 8,
            observer=observer if observer is not None else self.observer,
        )
        return state, accountant

    def step_epoch(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> Tuple[bool, int]:
        """Advance one epoch of an externally driven simulation.

        One iteration of :meth:`run`'s loop body, verbatim: open the
        window, scan, close, advance the epoch clock.  Returns
        ``(done, misses)``; once *done* the caller owns the final drain
        (``state.store_unit.pump(state.cur + 1)`` then
        ``accountant.finalize``), mirroring :meth:`run`'s tail so a
        single-context stepped run stays bit-identical to ``run()``.
        """
        state.begin_epoch()
        observer = state.observer
        if observer is not None:
            observer.on_epoch_begin(state)
        self._scan_window(trace, state, accountant)
        misses = self._close_epoch(trace, state, accountant)
        state.advance_epoch()
        if (
            state.pos >= len(trace)
            and not state.replay
            and state.store_unit.all_completed(state.cur)
        ):
            return True, misses
        state.check_progress(misses)
        return False, misses

    # -------------------------------------------------------- window scan --

    def _scan_window(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> None:
        """Grow the instruction window until a termination condition fires.

        The common instruction classes (ALU-like, loads, stores, control —
        identity tests ordered by dynamic frequency) are handled inline
        with every loop-invariant bound to a local; `state.pos` is carried
        in the local ``pos`` and synced back whenever an out-of-line
        handler (which may read it) runs, and once at loop exit.  The
        inlined bodies are line-for-line equivalents of the former
        ``_handle_alu`` / ``_handle_load`` / ``_handle_control`` methods.
        """
        core = self.core
        n = len(trace)
        # `cur` is constant for the duration of one scan (the epoch clock
        # only advances between scans), so the scoreboard comparisons can
        # use locals throughout.
        cur = state.cur
        resolved = state.resolved
        scoreboard = state.scoreboard
        ready = scoreboard._ready
        replay = state.replay
        deferred_other = state.deferred_other
        issue_window = core.issue_window
        rob_limit = core.rob
        load_buffer = core.load_buffer
        serial_handlers = self._serial_handlers
        handle_store = self._handle_store
        kind_alu = InstructionClass.ALU
        kind_nop = InstructionClass.NOP
        kind_prefetch = InstructionClass.PREFETCH
        kind_load = InstructionClass.LOAD
        kind_load_locked = InstructionClass.LOAD_LOCKED
        kind_store = InstructionClass.STORE
        kind_store_cond = InstructionClass.STORE_COND
        kind_branch = InstructionClass.BRANCH
        kind_call = InstructionClass.CALL
        kind_return = InstructionClass.RETURN
        pos = state.pos
        while True:
            if (
                state.store_events
                and not state.blocking
                and state.out_loads == 0
            ):
                state.pos = pos
                self._drain_overlapped_stores(state, accountant)

            if pos >= n:
                state.termination = TerminationCondition.END_OF_TRACE
                break

            if state.iw_occ >= issue_window or (
                state.blocking and (
                    state.rob_occ >= rob_limit
                    or state.loads_inflight >= load_buffer
                )
            ):
                state.termination = (
                    TerminationCondition.STORE_QUEUE_WINDOW_FULL
                    if state.sq_full_seen
                    else TerminationCondition.WINDOW_FULL
                )
                break

            inst, info = trace[pos]

            if info.inst_miss and pos not in resolved:
                resolved.add(pos)
                state.out_insts += 1
                if state.trigger is None:
                    state.trigger = TriggerKind.INSTRUCTION
                    state.first_issue_pos = pos
                state.termination = TerminationCondition.INSTRUCTION_MISS
                break  # pos stays: the instruction executes next epoch

            kind = inst.kind

            if kind is kind_alu or kind is kind_nop or kind is kind_prefetch:
                # ALU / NOP / PREFETCH: executes now or occupies a window
                # slot until its off-chip input returns.
                latest = 0
                for reg in inst.srcs:
                    if reg > 0:
                        epoch = ready[reg]
                        if epoch > latest:
                            latest = epoch
                dest = inst.dest
                if dest > 0:
                    value = latest if latest > cur else cur
                    if value > ready[dest]:
                        ready[dest] = value
                if latest > cur:
                    state.iw_occ += 1
                    deferred_other.append(latest)
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_load or kind is kind_load_locked:
                # A load issues, defers on a register dependence, or misses.
                latest = 0
                for reg in inst.srcs:
                    if reg > 0:
                        epoch = ready[reg]
                        if epoch > latest:
                            latest = epoch
                will_miss = info.data_miss and pos not in resolved
                if latest > cur:
                    resolved.add(pos)
                    replay.append(DeferredLoad(
                        exec_epoch=latest,
                        index=pos,
                        dest=inst.dest,
                        missing=will_miss,
                    ))
                    dest = inst.dest
                    if dest > 0:
                        value = latest + 1 if will_miss else latest
                        if value > ready[dest]:
                            ready[dest] = value
                    state.iw_occ += 1
                elif will_miss:
                    resolved.add(pos)
                    state.pos = pos
                    state.note_load_miss(inst.dest)
                else:
                    dest = inst.dest
                    if dest > 0 and cur > ready[dest]:
                        ready[dest] = cur
                    if state.blocking:
                        state.loads_inflight += 1
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_branch or kind is kind_call or kind is kind_return:
                # A mispredicted branch dependent on a missing load stops
                # the window; mispredictions resolvable on chip are free.
                if info.mispredicted:
                    latest = 0
                    for reg in inst.srcs:
                        if reg > 0:
                            epoch = ready[reg]
                            if epoch > latest:
                                latest = epoch
                    if latest > cur and state.out_loads > 0:
                        state.termination = (
                            TerminationCondition.MISPRED_BRANCH
                        )
                        pos += 1  # resolves at epoch end; resume after it
                        break
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_store or kind is kind_store_cond:
                state.pos = pos
                handle_store(state, accountant, inst, info)
                if state.termination is not None:
                    break  # pos stays: re-dispatch next epoch
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            # Rare serializing classes (CAS/MEMBAR/ISYNC/LWSYNC) through the
            # per-model dispatch table.
            state.pos = pos
            serial_handlers[kind](trace, state, inst, info)
            if state.termination is not None:
                break  # pos stays: the stalled instruction retries next epoch
            pos += 1
            if state.blocking:
                state.rob_occ += 1

        state.pos = pos
        if state.observer is not None and state.termination is not None:
            state.observer.on_termination(state.termination, pos, cur)

    def _drain_overlapped_stores(
        self, state: WindowState, accountant: EpochAccountant
    ) -> None:
        """Silent completion: store misses outstanding long enough, with
        nothing blocking, drain without costing an epoch."""
        if not state.store_events or state.blocking or state.out_loads > 0:
            return
        ripe = [
            e for e in state.store_events
            if state.pos - e.issue_position >= self.overlap_depth
        ]
        if not ripe:
            return
        state.store_unit.complete_silently(ripe)
        accountant.note_fully_overlapped(len(ripe))
        ripe_ids = {id(e) for e in ripe}
        state.store_events = [
            e for e in state.store_events if id(e) not in ripe_ids
        ]
        more, _ = state.store_unit.pump(state.cur)
        state.add_store_events(more)
        if not state.store_events:
            state.trigger = None
            state.first_issue_pos = -1
        elif state.trigger is None:
            state.trigger = TriggerKind.STORE
            state.first_issue_pos = state.pos

    # ----------------------------------------------------- class handlers --

    def _handle_store(
        self,
        state: WindowState,
        accountant: EpochAccountant,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """A store (or store-conditional) flows through the store unit."""
        core = self.core
        granule = state.store_unit.granule_of(inst.address)
        smac_hit = info.smac_hit
        if smac_hit and state.smac_probe is not None:
            # SMT sharing hook: another context may have dirtied the line
            # since this context trained the SMAC, demoting the hit.
            smac_hit = state.smac_probe(granule)
        missing = (
            info.data_miss
            and not smac_hit
            and state.pos not in state.resolved
            and not core.perfect_stores
        )
        accelerated = info.data_miss and (smac_hit or core.perfect_stores)
        entry = StoreEntry(
            granule=granule,
            missing=missing,
            accelerated=accelerated,
            release=inst.lock_release,
        )
        outcome = state.store_unit.dispatch(
            entry, retirable=not state.blocking, epoch=state.cur
        )
        if not outcome.accepted:
            state.termination = state.store_full_termination()
            return  # pos stays: re-dispatch next epoch
        if missing:
            state.resolved.add(state.pos)
        if accelerated:
            accountant.note_accelerated_store()
        state.add_store_events(outcome.issued)
        state.note_store_trigger()
        if outcome.retire_stalled_sq_full:
            state.blocking = True
            state.sq_full_seen = True

    def _handle_serializer_pc(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """``casa``/``membar`` under PC: drain, then execute.

        When older work is still pending the serializer must wait — the
        window ends here and (with PC2) loads and stores beyond it are
        prefetched.  Otherwise the instruction executes this epoch, and a
        CAS may issue its own off-chip access for the load half.
        """
        stores_pending = (
            bool(state.store_events)
            or not state.store_unit.all_completed(state.cur)
        )
        if stores_pending or state.others_pending():
            if state.out_loads > 0:
                state.termination = TerminationCondition.OTHER_SERIALIZE
            elif stores_pending:
                state.termination = TerminationCondition.STORE_SERIALIZE
            else:
                state.termination = TerminationCondition.OTHER_SERIALIZE
            self._prefetch_past(trace, state)
            return  # pos stays until the drain completes
        # Drained: the serializer executes this epoch.
        if inst.kind is InstructionClass.CAS:
            if info.data_miss and state.pos not in state.resolved:
                state.resolved.add(state.pos)
                state.note_load_miss(inst.dest)
                return
            state.scoreboard.produce_on_chip(inst.dest, state.cur)
            # The atomic's store half writes an owned line: a plain hit.
            state.store_unit.dispatch(
                StoreEntry(
                    granule=state.store_unit.granule_of(inst.address)
                ),
                retirable=True,
                epoch=state.cur,
            )

    def _handle_wc_cas(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """CAS executed under a WC core: atomic load+store, no drain."""
        if info.data_miss and state.pos not in state.resolved:
            state.resolved.add(state.pos)
            state.note_load_miss(inst.dest)
            return
        outcome = state.store_unit.dispatch(
            StoreEntry(granule=state.store_unit.granule_of(inst.address)),
            retirable=not state.blocking,
            epoch=state.cur,
        )
        if not outcome.accepted:
            # Store buffer full: end the window and re-execute the CAS next
            # epoch, exactly like a rejected plain store.  (Dropping the
            # dispatch here used to lose the atomic's store half from the
            # commit/bandwidth accounting.)
            state.termination = state.store_full_termination()
            return  # pos stays: re-dispatch next epoch
        state.scoreboard.produce_on_chip(inst.dest, state.cur)

    def _handle_isync_wc(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """``isync`` under WC waits for older instructions only — never for
        the store queue to drain.  With nothing pending it executes freely.
        (A PC-configured run maps ``isync`` to :meth:`_handle_freely`.)"""
        if state.others_pending():
            state.termination = TerminationCondition.OTHER_SERIALIZE
            self._prefetch_past(trace, state)

    def _handle_barrier(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """WC ordering barrier (``lwsync``, or ``membar`` under a WC core):
        orders store commits, does not stall the pipeline."""
        state.store_unit.add_barrier()

    def _handle_freely(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """A serializing instruction with no semantics under this model."""

    # ---------------------------------------------------------- epoch close --

    def _close_epoch(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> int:
        """Record the closed epoch (running a scout episode if eligible)
        and return the number of misses it overlapped."""
        misses, record = accountant.close_epoch(state)
        if record is not None:
            if self._scout_eligible(state.termination, state.out_loads):
                elapsed = (
                    state.pos - state.first_issue_pos
                    if state.first_issue_pos >= 0 else 0
                )
                outcome = run_scout(
                    trace,
                    state.pos,
                    self.scout_depth - elapsed,
                    state.scoreboard,
                    state.cur,
                    state.resolved,
                    prefetch_loads=True,
                    prefetch_stores=self.core.scout in (
                        ScoutMode.HWS1, ScoutMode.HWS2
                    ),
                    prefetch_insts=True,
                )
                if outcome.total:
                    state.resolved |= outcome.resolved
                    accountant.apply_scout(record, outcome)
            accountant.commit_epoch(record)
            if state.observer is not None:
                state.observer.on_epoch(record)
        return misses

    # --------------------------------------------------------------- helpers --

    def _prefetch_past(self, trace: AnnotatedTrace, state: WindowState) -> None:
        """Prefetch loads and stores beyond a stalled serializer (PC2/WC2).

        Bounded by the reorder buffer, since the serializer holds up
        retirement (paper Section 3.3.4).  The prefetched miss counts are
        charged to the closing epoch; resolved indices merge into the run's
        set.
        """
        if not self.core.prefetch_past_serializing:
            return
        outcome = run_scout(
            trace,
            state.pos + 1,
            self.core.rob,
            state.scoreboard,
            state.cur,
            state.resolved,
            prefetch_loads=True,
            prefetch_stores=True,
            prefetch_insts=False,
        )
        state.resolved |= outcome.resolved
        state.pf_loads += outcome.loads
        state.pf_stores += outcome.stores

    def _scout_eligible(
        self,
        termination: Optional[TerminationCondition],
        out_loads: int,
    ) -> bool:
        mode = self.core.scout
        if mode is ScoutMode.NONE or termination not in _SCOUTABLE:
            return False
        if mode is ScoutMode.HWS2:
            return True
        return out_loads > 0


def simulate(
    trace: AnnotatedTrace, config: SimulationConfig | None = None
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`MlpSimulator`."""
    return MlpSimulator(config or SimulationConfig()).run(trace)
