"""MLPsim: the trace-driven epoch MLP simulator (paper Section 4.1).

The simulator consumes an *annotated* trace — instructions paired with the
core-configuration-independent miss classification produced by
:func:`repro.memory.annotate.annotate_trace` — and partitions execution into
epochs by applying the window termination conditions implied by the core
configuration and memory consistency model.

Model of time: on-chip latencies are ignored.  Every off-chip access issued
inside an epoch completes when the epoch ends.  A register written by a
missing load issued in epoch *e* is usable from epoch *e+1*; instructions
that need it occupy issue-window entries until then.  The sole place where
real time enters is the *overlap depth*: a store miss whose request has been
outstanding for a full memory latency of instructions (IPC ~ 1) with no
intervening stall completes silently — this is the paper's "missing store
fully overlapped with computation" (Table 2).

The scan enforces, in priority order per instruction:

1. ROB / issue-window / load-buffer limits (bind only while something
   blocks retirement),
2. instruction-fetch misses (stop fetch; the miss overlaps this epoch),
3. per-class semantics: stores flow through the store unit (store buffer /
   store queue / coalescing / prefetch / consistency model), serializing
   instructions drain according to the consistency model, mispredicted
   branches dependent on missing loads stop the window, loads issue or
   defer on register dependences.

Hardware Scout episodes and prefetch-past-serializing are layered on top as
speculative look-ahead passes (:mod:`repro.core.scout`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..config import (
    ConsistencyModel,
    CoreConfig,
    ScoutMode,
    SimulationConfig,
)
from ..errors import SimulationError
from ..isa import Instruction, InstructionClass
from ..isa.opcodes import is_control
from ..memory.annotate import AccessInfo, AnnotatedTrace
from .epoch import EpochRecord, TerminationCondition, TriggerKind
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .scout import run_scout
from .store_unit import StoreEntry, StoreUnit

_SCOUTABLE = frozenset({
    TerminationCondition.WINDOW_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_SERIALIZE,
    TerminationCondition.OTHER_SERIALIZE,
})

_LOAD_KINDS = (InstructionClass.LOAD, InstructionClass.LOAD_LOCKED)
_STORE_KINDS = (InstructionClass.STORE, InstructionClass.STORE_COND)


@dataclass(slots=True)
class _DeferredLoad:
    """A load consumed into the window whose address depends on an
    outstanding miss; it executes (and may issue its own miss) later."""

    exec_epoch: int
    index: int
    dest: int
    missing: bool


class MlpSimulator:
    """Epoch MLP simulator bound to one configuration."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.core: CoreConfig = config.core
        #: Instructions of computation that fully hide one off-chip latency.
        self.overlap_depth: int = config.latency_instructions
        #: Instructions one Hardware Scout episode can cover.
        self.scout_depth: int = config.scout_depth

    # ------------------------------------------------------------------ run --

    def run(self, trace: AnnotatedTrace) -> SimulationResult:
        """Partition *trace* into epochs and return the measurements."""
        core = self.core
        model = core.consistency
        n = len(trace)
        result = SimulationResult(instructions=n)

        resolved: Set[int] = set()
        scoreboard = RegisterScoreboard()
        store_unit = StoreUnit(core)
        replay: List[_DeferredLoad] = []
        deferred_other: List[int] = []
        pos = 0
        cur = 0
        stagnation = 0
        stagnation_limit = core.store_queue + core.store_buffer + 8

        while True:
            # ---------------- epoch begin ----------------
            progress_key = (pos, len(replay), store_unit.occupancy)
            deferred_other = [e for e in deferred_other if e > cur]
            issued, _ = store_unit.pump(cur)
            store_events: List[StoreEntry] = []
            for entry in issued:
                entry.issue_position = pos
                store_events.append(entry)
            out_loads = 0
            out_insts = 0
            pf_loads = pf_stores = pf_insts = 0
            trigger: Optional[TriggerKind] = (
                TriggerKind.STORE if store_events else None
            )
            blocking = False
            sq_full_seen = store_unit.sq_full
            still: List[_DeferredLoad] = []
            for deferred in replay:
                if deferred.exec_epoch <= cur:
                    if deferred.missing:
                        out_loads += 1
                        blocking = True
                        if trigger is None:
                            trigger = TriggerKind.LOAD
                else:
                    still.append(deferred)
            replay = still
            rob_occ = len(replay) + len(deferred_other) + len(store_unit.sb)
            iw_occ = len(replay) + len(deferred_other)
            loads_inflight = out_loads
            epoch_start_pos = pos
            first_issue_pos = pos if (store_events or out_loads) else -1
            termination: Optional[TerminationCondition] = None

            # ---------------- window scan ----------------
            while termination is None:
                # Silent completion: store misses outstanding long enough,
                # with nothing blocking, drain without costing an epoch.
                if store_events and not blocking and out_loads == 0:
                    ripe = [
                        e for e in store_events
                        if pos - e.issue_position >= self.overlap_depth
                    ]
                    if ripe:
                        store_unit.complete_silently(ripe)
                        result.fully_overlapped_stores += len(ripe)
                        ripe_ids = {id(e) for e in ripe}
                        store_events = [
                            e for e in store_events if id(e) not in ripe_ids
                        ]
                        more, _ = store_unit.pump(cur)
                        for entry in more:
                            entry.issue_position = pos
                            store_events.append(entry)
                        if not store_events:
                            trigger = None
                            first_issue_pos = -1
                        elif trigger is None:
                            trigger = TriggerKind.STORE
                            first_issue_pos = pos

                if pos >= n:
                    termination = TerminationCondition.END_OF_TRACE
                    break

                if iw_occ >= core.issue_window or (
                    blocking and (
                        rob_occ >= core.rob
                        or loads_inflight >= core.load_buffer
                    )
                ):
                    termination = (
                        TerminationCondition.STORE_QUEUE_WINDOW_FULL
                        if sq_full_seen
                        else TerminationCondition.WINDOW_FULL
                    )
                    break

                inst, info = trace[pos]

                if info.inst_miss and pos not in resolved:
                    resolved.add(pos)
                    out_insts += 1
                    if trigger is None:
                        trigger = TriggerKind.INSTRUCTION
                        first_issue_pos = pos
                    termination = TerminationCondition.INSTRUCTION_MISS
                    break  # pos stays: the instruction executes next epoch

                kind = inst.kind
                advance = True

                if kind in _STORE_KINDS:
                    missing = (
                        info.data_miss
                        and not info.smac_hit
                        and pos not in resolved
                        and not core.perfect_stores
                    )
                    accelerated = info.data_miss and (
                        info.smac_hit or core.perfect_stores
                    )
                    entry = StoreEntry(
                        granule=store_unit.granule_of(inst.address),
                        missing=missing,
                        accelerated=accelerated,
                        release=inst.lock_release,
                    )
                    outcome = store_unit.dispatch(
                        entry, retirable=not blocking, epoch=cur
                    )
                    if not outcome.accepted:
                        termination = (
                            TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL
                            if sq_full_seen or store_unit.sq_full
                            else TerminationCondition.STORE_BUFFER_FULL
                        )
                        break  # pos stays: re-dispatch next epoch
                    if missing:
                        resolved.add(pos)
                    if accelerated:
                        result.accelerated_stores += 1
                    for issued_entry in outcome.issued:
                        issued_entry.issue_position = pos
                        store_events.append(issued_entry)
                    if store_events and trigger is None:
                        trigger = TriggerKind.STORE
                        first_issue_pos = pos
                    if outcome.retire_stalled_sq_full:
                        blocking = True
                        sq_full_seen = True

                elif kind is InstructionClass.CAS or (
                    kind is InstructionClass.MEMBAR
                    and model is ConsistencyModel.PC
                ):
                    if model is ConsistencyModel.PC:
                        handled, termination = self._serializer_pc(
                            inst, info, trace, pos, cur,
                            store_unit, scoreboard, resolved,
                            store_events, out_loads, out_insts,
                            replay, deferred_other,
                        )
                        if termination is not None:
                            pf = self._prefetch_past(
                                trace, pos, cur, scoreboard, resolved
                            )
                            pf_loads += pf[0]
                            pf_stores += pf[1]
                            break  # pos stays until the drain completes
                        if handled == "load_miss":
                            out_loads += 1
                            loads_inflight += 1
                            blocking = True
                            if trigger is None:
                                trigger = TriggerKind.LOAD
                                first_issue_pos = pos
                    else:
                        # CAS in a WC-configured run of a TSO trace: an
                        # atomic load+store without TSO's drain semantics.
                        advance, extra = self._memory_access_wc_cas(
                            inst, info, pos, cur, store_unit,
                            scoreboard, resolved, blocking,
                        )
                        if extra == "load_miss":
                            out_loads += 1
                            loads_inflight += 1
                            blocking = True
                            if trigger is None:
                                trigger = TriggerKind.LOAD
                                first_issue_pos = pos

                elif kind is InstructionClass.ISYNC:
                    waiting = (
                        out_loads > 0 or out_insts > 0
                        or bool(replay) or bool(deferred_other)
                    )
                    if model is ConsistencyModel.WC and waiting:
                        termination = TerminationCondition.OTHER_SERIALIZE
                        pf = self._prefetch_past(
                            trace, pos, cur, scoreboard, resolved
                        )
                        pf_loads += pf[0]
                        pf_stores += pf[1]
                        break  # isync waits for older instructions only
                    # Under PC (foreign trace) or with nothing pending:
                    # executes freely.  Crucially it never waits for the
                    # store queue to drain.

                elif kind in (InstructionClass.LWSYNC, InstructionClass.MEMBAR):
                    # WC ordering barrier: orders store commits, does not
                    # stall the pipeline.
                    store_unit.add_barrier()

                elif kind in _LOAD_KINDS:
                    ready = scoreboard.ready_epoch(inst.reads())
                    will_miss = info.data_miss and pos not in resolved
                    if ready > cur:
                        resolved.add(pos)
                        replay.append(_DeferredLoad(
                            exec_epoch=ready,
                            index=pos,
                            dest=inst.dest,
                            missing=will_miss,
                        ))
                        if inst.dest >= 0:
                            if will_miss:
                                scoreboard.produce_off_chip(inst.dest, ready)
                            else:
                                scoreboard.produce_on_chip(inst.dest, ready)
                        iw_occ += 1
                    elif will_miss:
                        resolved.add(pos)
                        out_loads += 1
                        loads_inflight += 1
                        scoreboard.produce_off_chip(inst.dest, cur)
                        blocking = True
                        if trigger is None:
                            trigger = TriggerKind.LOAD
                            first_issue_pos = pos
                    else:
                        scoreboard.produce_on_chip(inst.dest, cur)
                        if blocking:
                            loads_inflight += 1

                elif is_control(kind):
                    if info.mispredicted:
                        depends = scoreboard.ready_epoch(inst.reads()) > cur
                        if depends and out_loads > 0:
                            termination = TerminationCondition.MISPRED_BRANCH
                            pos += 1  # resolves at epoch end; resume after it
                            break
                    # Mispredictions resolvable on chip cost no epoch.

                else:  # ALU / NOP / PREFETCH
                    ready = scoreboard.ready_epoch(inst.reads())
                    if inst.dest >= 0:
                        scoreboard.produce_on_chip(inst.dest, max(ready, cur))
                    if ready > cur:
                        iw_occ += 1
                        deferred_other.append(ready)

                if advance:
                    pos += 1
                    if blocking:
                        rob_occ += 1

            # ---------------- epoch close ----------------
            misses = (
                len(store_events) + out_loads + out_insts
                + pf_loads + pf_stores + pf_insts
            )
            if misses > 0:
                record = EpochRecord(
                    index=len(result.epochs),
                    trigger=trigger or TriggerKind.STORE,
                    termination=termination,
                    store_misses=len(store_events) + pf_stores,
                    load_misses=out_loads + pf_loads,
                    inst_misses=out_insts + pf_insts,
                    instructions=pos - epoch_start_pos,
                )
                if self._scout_eligible(termination, out_loads):
                    elapsed = pos - first_issue_pos if first_issue_pos >= 0 else 0
                    budget = self.scout_depth - elapsed
                    outcome = run_scout(
                        trace, pos, budget, scoreboard, cur, resolved,
                        prefetch_loads=True,
                        prefetch_stores=core.scout in (
                            ScoutMode.HWS1, ScoutMode.HWS2
                        ),
                        prefetch_insts=True,
                    )
                    if outcome.total:
                        resolved |= outcome.resolved
                        record.load_misses += outcome.loads
                        record.store_misses += outcome.stores
                        record.inst_misses += outcome.insts
                        record.scouted = True
                        result.scout_episodes += 1
                result.epochs.append(record)
            cur += 1

            if pos >= n and not replay and store_unit.all_completed(cur):
                break
            if (pos, len(replay), store_unit.occupancy) == progress_key and misses == 0:
                stagnation += 1
                if stagnation > stagnation_limit:
                    raise SimulationError(
                        f"no forward progress at position {pos} "
                        f"(epoch clock {cur}); simulator state is wedged"
                    )
            else:
                stagnation = 0

        # Final drain: entries whose misses completed in the last epoch are
        # committed here so the bandwidth accounting covers every store.
        store_unit.pump(cur + 1)
        result.stores_committed = store_unit.stats.committed
        result.store_prefetch_requests = store_unit.stats.prefetch_requests
        result.stores_coalesced = store_unit.stats.coalesced
        return result

    # --------------------------------------------------------------- helpers --

    def _serializer_pc(
        self,
        inst: Instruction,
        info: AccessInfo,
        trace: AnnotatedTrace,
        pos: int,
        cur: int,
        store_unit: StoreUnit,
        scoreboard: RegisterScoreboard,
        resolved: Set[int],
        store_events: List[StoreEntry],
        out_loads: int,
        out_insts: int,
        replay: List[_DeferredLoad],
        deferred_other: List[int],
    ) -> tuple[str, Optional[TerminationCondition]]:
        """Handle ``casa``/``membar`` under PC.

        Returns ``(handled, termination)``: termination is set when the
        serializer must wait (the window ends here), otherwise the
        instruction executed and ``handled`` says whether the CAS issued an
        off-chip access ("load_miss") or completed on chip ("done").
        """
        stores_pending = bool(store_events) or not store_unit.all_completed(cur)
        others_pending = (
            out_loads > 0 or out_insts > 0
            or bool(replay) or bool(deferred_other)
        )
        if stores_pending or others_pending:
            if out_loads > 0:
                return "", TerminationCondition.OTHER_SERIALIZE
            if stores_pending:
                return "", TerminationCondition.STORE_SERIALIZE
            return "", TerminationCondition.OTHER_SERIALIZE
        # Drained: the serializer executes this epoch.
        if inst.kind is InstructionClass.CAS:
            if info.data_miss and pos not in resolved:
                resolved.add(pos)
                scoreboard.produce_off_chip(inst.dest, cur)
                return "load_miss", None
            scoreboard.produce_on_chip(inst.dest, cur)
            # The atomic's store half writes an owned line: a plain hit.
            store_unit.dispatch(
                StoreEntry(granule=store_unit.granule_of(inst.address)),
                retirable=True,
                epoch=cur,
            )
        return "done", None

    def _memory_access_wc_cas(
        self,
        inst: Instruction,
        info: AccessInfo,
        pos: int,
        cur: int,
        store_unit: StoreUnit,
        scoreboard: RegisterScoreboard,
        resolved: Set[int],
        blocking: bool,
    ) -> tuple[bool, str]:
        """CAS executed under a WC core: atomic load+store, no drain."""
        if info.data_miss and pos not in resolved:
            resolved.add(pos)
            scoreboard.produce_off_chip(inst.dest, cur)
            return True, "load_miss"
        scoreboard.produce_on_chip(inst.dest, cur)
        outcome = store_unit.dispatch(
            StoreEntry(granule=store_unit.granule_of(inst.address)),
            retirable=not blocking,
            epoch=cur,
        )
        if not outcome.accepted:
            # Extremely rare (atomic with SB full): treat as on-chip retry.
            pass
        return True, "done"

    def _prefetch_past(
        self,
        trace: AnnotatedTrace,
        pos: int,
        cur: int,
        scoreboard: RegisterScoreboard,
        resolved: Set[int],
    ) -> tuple[int, int]:
        """Prefetch loads and stores beyond a stalled serializer (PC2/WC2).

        Bounded by the reorder buffer, since the serializer holds up
        retirement (paper Section 3.3.4).  Returns (loads, stores) counts;
        resolved indices are merged into the caller's set.
        """
        if not self.core.prefetch_past_serializing:
            return (0, 0)
        outcome = run_scout(
            trace,
            pos + 1,
            self.core.rob,
            scoreboard,
            cur,
            resolved,
            prefetch_loads=True,
            prefetch_stores=True,
            prefetch_insts=False,
        )
        resolved |= outcome.resolved
        return (outcome.loads, outcome.stores)

    def _scout_eligible(
        self,
        termination: Optional[TerminationCondition],
        out_loads: int,
    ) -> bool:
        mode = self.core.scout
        if mode is ScoutMode.NONE or termination not in _SCOUTABLE:
            return False
        if mode is ScoutMode.HWS2:
            return True
        return out_loads > 0


def simulate(
    trace: AnnotatedTrace, config: SimulationConfig | None = None
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`MlpSimulator`."""
    return MlpSimulator(config or SimulationConfig()).run(trace)
