"""MLPsim: the trace-driven epoch MLP simulator (paper Section 4.1).

The simulator consumes an *annotated* trace — instructions paired with the
core-configuration-independent miss classification produced by
:func:`repro.memory.annotate.annotate_trace` — and partitions execution into
epochs by applying the window termination conditions implied by the core
configuration and memory consistency model.

Model of time: on-chip latencies are ignored.  Every off-chip access issued
inside an epoch completes when the epoch ends.  A register written by a
missing load issued in epoch *e* is usable from epoch *e+1*; instructions
that need it occupy issue-window entries until then.  The sole place where
real time enters is the *overlap depth*: a store miss whose request has been
outstanding for a full memory latency of instructions (IPC ~ 1) with no
intervening stall completes silently — this is the paper's "missing store
fully overlapped with computation" (Table 2).

The scan enforces, in priority order per instruction:

1. ROB / issue-window / load-buffer limits (bind only while something
   blocks retirement),
2. instruction-fetch misses (stop fetch; the miss overlaps this epoch),
3. per-class semantics: stores flow through the store unit (store buffer /
   store queue / coalescing / prefetch / consistency model), serializing
   instructions drain according to the consistency model, mispredicted
   branches dependent on missing loads stop the window, loads issue or
   defer on register dependences.

Hardware Scout episodes and prefetch-past-serializing are layered on top as
speculative look-ahead passes (:mod:`repro.core.scout`).

Structure: all mutable state lives in :class:`~repro.core.window.WindowState`,
result accounting in :class:`~repro.core.window.EpochAccountant`, and each
instruction class has its own ``_handle_*`` method — see
:mod:`repro.core.window` for the decomposition rationale and the observer
hooks that let instrumentation attach without touching this hot path.
"""

from __future__ import annotations

from typing import Optional

from ..config import (
    ConsistencyModel,
    CoreConfig,
    ScoutMode,
    SimulationConfig,
)
from ..isa import Instruction, InstructionClass
from ..isa.opcodes import is_control
from ..memory.annotate import AccessInfo, AnnotatedTrace
from .epoch import TerminationCondition, TriggerKind
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .scout import run_scout
from .store_unit import StoreEntry, StoreUnit
from .window import DeferredLoad, EpochAccountant, WindowObserver, WindowState

_SCOUTABLE = frozenset({
    TerminationCondition.WINDOW_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_SERIALIZE,
    TerminationCondition.OTHER_SERIALIZE,
})

_LOAD_KINDS = (InstructionClass.LOAD, InstructionClass.LOAD_LOCKED)
_STORE_KINDS = (InstructionClass.STORE, InstructionClass.STORE_COND)


class MlpSimulator:
    """Epoch MLP simulator bound to one configuration."""

    def __init__(
        self,
        config: SimulationConfig,
        observer: WindowObserver | None = None,
    ) -> None:
        self.config = config
        self.core: CoreConfig = config.core
        #: Instructions of computation that fully hide one off-chip latency.
        self.overlap_depth: int = config.latency_instructions
        #: Instructions one Hardware Scout episode can cover.
        self.scout_depth: int = config.scout_depth
        self.observer = observer

    # ------------------------------------------------------------------ run --

    def run(
        self,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
    ) -> SimulationResult:
        """Partition *trace* into epochs and return the measurements."""
        core = self.core
        n = len(trace)
        accountant = EpochAccountant(instructions=n)
        state = WindowState(
            scoreboard=RegisterScoreboard(),
            store_unit=StoreUnit(core),
            stagnation_limit=core.store_queue + core.store_buffer + 8,
            observer=observer if observer is not None else self.observer,
        )

        while True:
            state.begin_epoch()
            self._scan_window(trace, state, accountant)
            misses = self._close_epoch(trace, state, accountant)
            state.advance_epoch()
            if (
                state.pos >= n
                and not state.replay
                and state.store_unit.all_completed(state.cur)
            ):
                break
            state.check_progress(misses)

        # Final drain: entries whose misses completed in the last epoch are
        # committed here so the bandwidth accounting covers every store.
        state.store_unit.pump(state.cur + 1)
        return accountant.finalize(state.store_unit)

    # -------------------------------------------------------- window scan --

    def _scan_window(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> None:
        """Grow the instruction window until a termination condition fires."""
        core = self.core
        n = len(trace)
        while state.termination is None:
            self._drain_overlapped_stores(state, accountant)

            if state.pos >= n:
                state.termination = TerminationCondition.END_OF_TRACE
                break

            if state.iw_occ >= core.issue_window or (
                state.blocking and (
                    state.rob_occ >= core.rob
                    or state.loads_inflight >= core.load_buffer
                )
            ):
                state.termination = (
                    TerminationCondition.STORE_QUEUE_WINDOW_FULL
                    if state.sq_full_seen
                    else TerminationCondition.WINDOW_FULL
                )
                break

            inst, info = trace[state.pos]

            if info.inst_miss and state.pos not in state.resolved:
                state.resolved.add(state.pos)
                state.out_insts += 1
                if state.trigger is None:
                    state.trigger = TriggerKind.INSTRUCTION
                    state.first_issue_pos = state.pos
                state.termination = TerminationCondition.INSTRUCTION_MISS
                break  # pos stays: the instruction executes next epoch

            state.advance = True
            self._dispatch(trace, state, accountant, inst, info)
            if state.termination is not None:
                break  # pos stays: the stalled instruction retries next epoch

            if state.advance:
                state.pos += 1
                if state.blocking:
                    state.rob_occ += 1

        if state.observer is not None and state.termination is not None:
            state.observer.on_termination(state.termination, state.pos, state.cur)

    def _dispatch(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """Route one instruction to its class handler."""
        kind = inst.kind
        model = self.core.consistency
        if kind in _STORE_KINDS:
            self._handle_store(state, accountant, inst, info)
        elif kind is InstructionClass.CAS or (
            kind is InstructionClass.MEMBAR
            and model is ConsistencyModel.PC
        ):
            if model is ConsistencyModel.PC:
                self._handle_serializer_pc(trace, state, inst, info)
            else:
                # CAS in a WC-configured run of a TSO trace: an atomic
                # load+store without TSO's drain semantics.
                self._handle_wc_cas(state, inst, info)
        elif kind is InstructionClass.ISYNC:
            self._handle_isync(trace, state)
        elif kind in (InstructionClass.LWSYNC, InstructionClass.MEMBAR):
            # WC ordering barrier: orders store commits, does not stall
            # the pipeline.
            state.store_unit.add_barrier()
        elif kind in _LOAD_KINDS:
            self._handle_load(state, inst, info)
        elif is_control(kind):
            self._handle_control(state, inst, info)
        else:
            self._handle_alu(state, inst)

    def _drain_overlapped_stores(
        self, state: WindowState, accountant: EpochAccountant
    ) -> None:
        """Silent completion: store misses outstanding long enough, with
        nothing blocking, drain without costing an epoch."""
        if not state.store_events or state.blocking or state.out_loads > 0:
            return
        ripe = [
            e for e in state.store_events
            if state.pos - e.issue_position >= self.overlap_depth
        ]
        if not ripe:
            return
        state.store_unit.complete_silently(ripe)
        accountant.note_fully_overlapped(len(ripe))
        ripe_ids = {id(e) for e in ripe}
        state.store_events = [
            e for e in state.store_events if id(e) not in ripe_ids
        ]
        more, _ = state.store_unit.pump(state.cur)
        state.add_store_events(more)
        if not state.store_events:
            state.trigger = None
            state.first_issue_pos = -1
        elif state.trigger is None:
            state.trigger = TriggerKind.STORE
            state.first_issue_pos = state.pos

    # ----------------------------------------------------- class handlers --

    def _handle_store(
        self,
        state: WindowState,
        accountant: EpochAccountant,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """A store (or store-conditional) flows through the store unit."""
        core = self.core
        missing = (
            info.data_miss
            and not info.smac_hit
            and state.pos not in state.resolved
            and not core.perfect_stores
        )
        accelerated = info.data_miss and (info.smac_hit or core.perfect_stores)
        entry = StoreEntry(
            granule=state.store_unit.granule_of(inst.address),
            missing=missing,
            accelerated=accelerated,
            release=inst.lock_release,
        )
        outcome = state.store_unit.dispatch(
            entry, retirable=not state.blocking, epoch=state.cur
        )
        if not outcome.accepted:
            state.termination = state.store_full_termination()
            return  # pos stays: re-dispatch next epoch
        if missing:
            state.resolved.add(state.pos)
        if accelerated:
            accountant.note_accelerated_store()
        state.add_store_events(outcome.issued)
        state.note_store_trigger()
        if outcome.retire_stalled_sq_full:
            state.blocking = True
            state.sq_full_seen = True

    def _handle_serializer_pc(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """``casa``/``membar`` under PC: drain, then execute.

        When older work is still pending the serializer must wait — the
        window ends here and (with PC2) loads and stores beyond it are
        prefetched.  Otherwise the instruction executes this epoch, and a
        CAS may issue its own off-chip access for the load half.
        """
        stores_pending = (
            bool(state.store_events)
            or not state.store_unit.all_completed(state.cur)
        )
        if stores_pending or state.others_pending():
            if state.out_loads > 0:
                state.termination = TerminationCondition.OTHER_SERIALIZE
            elif stores_pending:
                state.termination = TerminationCondition.STORE_SERIALIZE
            else:
                state.termination = TerminationCondition.OTHER_SERIALIZE
            self._prefetch_past(trace, state)
            return  # pos stays until the drain completes
        # Drained: the serializer executes this epoch.
        if inst.kind is InstructionClass.CAS:
            if info.data_miss and state.pos not in state.resolved:
                state.resolved.add(state.pos)
                state.note_load_miss(inst.dest)
                return
            state.scoreboard.produce_on_chip(inst.dest, state.cur)
            # The atomic's store half writes an owned line: a plain hit.
            state.store_unit.dispatch(
                StoreEntry(
                    granule=state.store_unit.granule_of(inst.address)
                ),
                retirable=True,
                epoch=state.cur,
            )

    def _handle_wc_cas(
        self,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """CAS executed under a WC core: atomic load+store, no drain."""
        if info.data_miss and state.pos not in state.resolved:
            state.resolved.add(state.pos)
            state.note_load_miss(inst.dest)
            return
        outcome = state.store_unit.dispatch(
            StoreEntry(granule=state.store_unit.granule_of(inst.address)),
            retirable=not state.blocking,
            epoch=state.cur,
        )
        if not outcome.accepted:
            # Store buffer full: end the window and re-execute the CAS next
            # epoch, exactly like a rejected plain store.  (Dropping the
            # dispatch here used to lose the atomic's store half from the
            # commit/bandwidth accounting.)
            state.termination = state.store_full_termination()
            return  # pos stays: re-dispatch next epoch
        state.scoreboard.produce_on_chip(inst.dest, state.cur)

    def _handle_isync(self, trace: AnnotatedTrace, state: WindowState) -> None:
        """``isync`` waits for older instructions only — never for the
        store queue to drain.  Under PC (foreign trace) or with nothing
        pending it executes freely."""
        if (
            self.core.consistency is ConsistencyModel.WC
            and state.others_pending()
        ):
            state.termination = TerminationCondition.OTHER_SERIALIZE
            self._prefetch_past(trace, state)

    def _handle_load(
        self,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """A load issues, defers on a register dependence, or misses."""
        ready = state.scoreboard.ready_epoch(inst.reads())
        will_miss = info.data_miss and state.pos not in state.resolved
        if ready > state.cur:
            state.resolved.add(state.pos)
            state.replay.append(DeferredLoad(
                exec_epoch=ready,
                index=state.pos,
                dest=inst.dest,
                missing=will_miss,
            ))
            if inst.dest >= 0:
                if will_miss:
                    state.scoreboard.produce_off_chip(inst.dest, ready)
                else:
                    state.scoreboard.produce_on_chip(inst.dest, ready)
            state.iw_occ += 1
        elif will_miss:
            state.resolved.add(state.pos)
            state.note_load_miss(inst.dest)
        else:
            state.scoreboard.produce_on_chip(inst.dest, state.cur)
            if state.blocking:
                state.loads_inflight += 1

    def _handle_control(
        self,
        state: WindowState,
        inst: Instruction,
        info: AccessInfo,
    ) -> None:
        """A mispredicted branch dependent on a missing load stops the
        window; mispredictions resolvable on chip cost no epoch."""
        if info.mispredicted:
            depends = state.scoreboard.ready_epoch(inst.reads()) > state.cur
            if depends and state.out_loads > 0:
                state.termination = TerminationCondition.MISPRED_BRANCH
                state.pos += 1  # resolves at epoch end; resume after it

    def _handle_alu(self, state: WindowState, inst: Instruction) -> None:
        """ALU / NOP / PREFETCH: executes now or occupies a window slot
        until its off-chip input returns."""
        ready = state.scoreboard.ready_epoch(inst.reads())
        if inst.dest >= 0:
            state.scoreboard.produce_on_chip(
                inst.dest, max(ready, state.cur)
            )
        if ready > state.cur:
            state.iw_occ += 1
            state.deferred_other.append(ready)

    # ---------------------------------------------------------- epoch close --

    def _close_epoch(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> int:
        """Record the closed epoch (running a scout episode if eligible)
        and return the number of misses it overlapped."""
        misses, record = accountant.close_epoch(state)
        if record is not None:
            if self._scout_eligible(state.termination, state.out_loads):
                elapsed = (
                    state.pos - state.first_issue_pos
                    if state.first_issue_pos >= 0 else 0
                )
                outcome = run_scout(
                    trace,
                    state.pos,
                    self.scout_depth - elapsed,
                    state.scoreboard,
                    state.cur,
                    state.resolved,
                    prefetch_loads=True,
                    prefetch_stores=self.core.scout in (
                        ScoutMode.HWS1, ScoutMode.HWS2
                    ),
                    prefetch_insts=True,
                )
                if outcome.total:
                    state.resolved |= outcome.resolved
                    accountant.apply_scout(record, outcome)
            accountant.commit_epoch(record)
            if state.observer is not None:
                state.observer.on_epoch(record)
        return misses

    # --------------------------------------------------------------- helpers --

    def _prefetch_past(self, trace: AnnotatedTrace, state: WindowState) -> None:
        """Prefetch loads and stores beyond a stalled serializer (PC2/WC2).

        Bounded by the reorder buffer, since the serializer holds up
        retirement (paper Section 3.3.4).  The prefetched miss counts are
        charged to the closing epoch; resolved indices merge into the run's
        set.
        """
        if not self.core.prefetch_past_serializing:
            return
        outcome = run_scout(
            trace,
            state.pos + 1,
            self.core.rob,
            state.scoreboard,
            state.cur,
            state.resolved,
            prefetch_loads=True,
            prefetch_stores=True,
            prefetch_insts=False,
        )
        state.resolved |= outcome.resolved
        state.pf_loads += outcome.loads
        state.pf_stores += outcome.stores

    def _scout_eligible(
        self,
        termination: Optional[TerminationCondition],
        out_loads: int,
    ) -> bool:
        mode = self.core.scout
        if mode is ScoutMode.NONE or termination not in _SCOUTABLE:
            return False
        if mode is ScoutMode.HWS2:
            return True
        return out_loads > 0


def simulate(
    trace: AnnotatedTrace, config: SimulationConfig | None = None
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`MlpSimulator`."""
    return MlpSimulator(config or SimulationConfig()).run(trace)
