"""Window-scan state, epoch accounting and observer hooks for MLPsim.

:class:`MlpSimulator.run <repro.core.mlpsim.MlpSimulator>` used to be one
300-line loop juggling ~15 mutable locals.  This module holds the pieces it
was decomposed into:

- :class:`WindowState` owns every piece of mutable simulation state — the
  cross-epoch machine state (position, epoch clock, replay queue, register
  scoreboard, store unit) and the per-epoch window bookkeeping (outstanding
  miss counts, occupancies, trigger/termination).  The per-instruction-class
  handler methods on the simulator mutate exactly one of these objects.
- :class:`EpochAccountant` centralizes all result accounting: the
  miss/overlap/scout counters, epoch-record construction and the final
  store-bandwidth rollup.  No handler touches ``SimulationResult`` directly.
- :class:`WindowObserver` is the optional instrumentation hook.  Profilers
  and tracers subclass it and attach via ``MlpSimulator(config,
  observer=...)``; when no observer is attached the hot path pays a single
  ``is None`` check per event site.

The decomposition is behaviour-preserving: the golden-result tests in
``tests/test_golden_window.py`` pin EPI, the termination/trigger histograms
and the store-accounting counters to the pre-refactor values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from ..errors import SimulationError
from .epoch import EpochRecord, TerminationCondition, TriggerKind
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .scout import ScoutOutcome
from .store_unit import StoreEntry, StoreUnit


@dataclass(slots=True)
class DeferredLoad:
    """A load consumed into the window whose address depends on an
    outstanding miss; it executes (and may issue its own miss) later."""

    exec_epoch: int
    index: int
    dest: int
    missing: bool


class WindowObserver:
    """No-op instrumentation callbacks invoked by the window scan.

    Subclass and override any subset; every method defaults to a no-op so
    observers stay cheap to write.  The simulator only calls these when an
    observer is attached, keeping the unobserved hot path branch-free.
    """

    def on_epoch_begin(self, state: "WindowState") -> None:
        """A new epoch's window is opening; *state* is readable in place.

        Called after :meth:`WindowState.begin_epoch` has pumped the store
        unit and matured the replay queue, so occupancies reflect the
        window's starting condition.  Observers must treat *state* as
        read-only.
        """

    def on_epoch(self, record: EpochRecord) -> None:
        """One epoch closed with at least one off-chip miss outstanding."""

    def on_termination(
        self,
        condition: TerminationCondition,
        pos: int,
        epoch: int,
    ) -> None:
        """The window stopped growing at trace position *pos*."""

    def on_store_event(self, entry: StoreEntry, pos: int, epoch: int) -> None:
        """A store miss went off chip while the window was at *pos*."""


@dataclass(slots=True)
class WindowState:
    """All mutable state of one :class:`MlpSimulator` run.

    Cross-epoch machine state lives alongside the per-epoch window
    bookkeeping that :meth:`begin_epoch` resets; the per-instruction-class
    handlers mutate this object and nothing else.
    """

    scoreboard: RegisterScoreboard
    store_unit: StoreUnit
    stagnation_limit: int
    observer: Optional[WindowObserver] = None
    #: Cross-context SMAC presence probe (SMT sharing hook).  When set, a
    #: store whose annotation says ``smac_hit`` consults this callable with
    #: the store's granule; returning ``False`` demotes the hit to a plain
    #: miss (another hardware context dirtied the line since this context
    #: trained the accelerator).  ``None`` — the single-context default —
    #: keeps the annotated hit authoritative and the hot path unchanged.
    smac_probe: Optional[Callable[[int], bool]] = None

    # -- cross-epoch machine state ----------------------------------------
    pos: int = 0
    cur: int = 0
    resolved: Set[int] = field(default_factory=set)
    replay: List[DeferredLoad] = field(default_factory=list)
    deferred_other: List[int] = field(default_factory=list)
    stagnation: int = 0
    progress_key: Tuple[int, int, int] = (-1, -1, -1)

    # -- per-epoch window bookkeeping --------------------------------------
    store_events: List[StoreEntry] = field(default_factory=list)
    out_loads: int = 0
    out_insts: int = 0
    pf_loads: int = 0
    pf_stores: int = 0
    pf_insts: int = 0
    trigger: Optional[TriggerKind] = None
    blocking: bool = False
    sq_full_seen: bool = False
    rob_occ: int = 0
    iw_occ: int = 0
    loads_inflight: int = 0
    epoch_start_pos: int = 0
    first_issue_pos: int = -1
    termination: Optional[TerminationCondition] = None

    # ------------------------------------------------------------ epochs --

    def begin_epoch(self) -> None:
        """Reset the window bookkeeping and replay deferred work.

        Mirrors the head of the old monolithic loop exactly: snapshot the
        progress key, drop matured ALU deferrals, pump the store unit (its
        newly issued misses open the epoch), then mature the replay queue —
        a deferred missing load whose input arrived becomes this epoch's
        outstanding load miss.
        """
        self.progress_key = (
            self.pos, len(self.replay), self.store_unit.occupancy,
        )
        self.deferred_other = [e for e in self.deferred_other if e > self.cur]
        issued, _ = self.store_unit.pump(self.cur)
        self.store_events = []
        self.add_store_events(issued)
        self.out_loads = 0
        self.out_insts = 0
        self.pf_loads = self.pf_stores = self.pf_insts = 0
        self.trigger = TriggerKind.STORE if self.store_events else None
        self.blocking = False
        self.sq_full_seen = self.store_unit.sq_full
        still: List[DeferredLoad] = []
        for deferred in self.replay:
            if deferred.exec_epoch <= self.cur:
                if deferred.missing:
                    self.out_loads += 1
                    self.blocking = True
                    if self.trigger is None:
                        self.trigger = TriggerKind.LOAD
            else:
                still.append(deferred)
        self.replay = still
        self.rob_occ = (
            len(self.replay) + len(self.deferred_other)
            + len(self.store_unit.sb)
        )
        self.iw_occ = len(self.replay) + len(self.deferred_other)
        self.loads_inflight = self.out_loads
        self.epoch_start_pos = self.pos
        self.first_issue_pos = (
            self.pos if (self.store_events or self.out_loads) else -1
        )
        self.termination = None

    def advance_epoch(self) -> None:
        """Advance the epoch clock: all misses of the closed epoch are now
        complete."""
        self.cur += 1

    def check_progress(self, misses: int) -> None:
        """Police forward progress after a closed epoch."""
        key = (self.pos, len(self.replay), self.store_unit.occupancy)
        if key == self.progress_key and misses == 0:
            self.stagnation += 1
            if self.stagnation > self.stagnation_limit:
                raise SimulationError(
                    f"no forward progress at position {self.pos} "
                    f"(epoch clock {self.cur - 1}); simulator state is "
                    f"wedged"
                )
        else:
            self.stagnation = 0

    # ---------------------------------------------------------- bookkeeping --

    def add_store_events(self, entries: List[StoreEntry]) -> None:
        """Record newly issued store misses as outstanding in this window.

        Called after every store dispatch and pump, almost always with an
        empty list, so the empty case returns before touching anything and
        the no-observer case hoists the ``is None`` test out of the loop.
        """
        if not entries:
            return
        pos = self.pos
        observer = self.observer
        if observer is None:
            for entry in entries:
                entry.issue_position = pos
            self.store_events.extend(entries)
            return
        for entry in entries:
            entry.issue_position = pos
            self.store_events.append(entry)
            observer.on_store_event(entry, pos, self.cur)

    def note_store_trigger(self) -> None:
        """A store miss opened the epoch at the current position."""
        if self.store_events and self.trigger is None:
            self.trigger = TriggerKind.STORE
            self.first_issue_pos = self.pos

    def note_load_miss(self, dest: int) -> None:
        """A load (or CAS load half) issued an off-chip miss right now."""
        self.scoreboard.produce_off_chip(dest, self.cur)
        self.out_loads += 1
        self.loads_inflight += 1
        self.blocking = True
        if self.trigger is None:
            self.trigger = TriggerKind.LOAD
            self.first_issue_pos = self.pos

    def others_pending(self) -> bool:
        """True when non-store work is outstanding (serializer precondition)."""
        return (
            self.out_loads > 0 or self.out_insts > 0
            or bool(self.replay) or bool(self.deferred_other)
        )

    def store_full_termination(self) -> TerminationCondition:
        """The Figure 3 label for a store-buffer-full window stop."""
        if self.sq_full_seen or self.store_unit.sq_full:
            return TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL
        return TerminationCondition.STORE_BUFFER_FULL


class EpochAccountant:
    """Centralized miss/overlap/scout accounting for one simulation run.

    Owns the :class:`SimulationResult` being built; the simulator and its
    handlers report events here instead of poking result fields, so the
    accounting reads in one place and the ECM-style per-phase attribution
    (which misses were charged to which epoch, what was hidden by overlap
    or scouting) stays auditable.
    """

    __slots__ = ("result",)

    def __init__(self, instructions: int) -> None:
        self.result = SimulationResult(instructions=instructions)

    # -- per-event counters -------------------------------------------------

    def note_fully_overlapped(self, count: int) -> None:
        """Store misses whose latency computation fully hid (Table 2)."""
        self.result.fully_overlapped_stores += count

    def note_accelerated_store(self) -> None:
        """A store miss the SMAC (or perfect-store mode) absorbed."""
        self.result.accelerated_stores += 1

    # -- epoch close --------------------------------------------------------

    def epoch_misses(self, state: WindowState) -> int:
        """Off-chip accesses charged to the epoch being closed."""
        return (
            len(state.store_events) + state.out_loads + state.out_insts
            + state.pf_loads + state.pf_stores + state.pf_insts
        )

    def close_epoch(self, state: WindowState) -> Tuple[int, Optional[EpochRecord]]:
        """Build the epoch's record (``None`` when no miss was outstanding)."""
        misses = self.epoch_misses(state)
        if misses == 0:
            return 0, None
        record = EpochRecord(
            index=len(self.result.epochs),
            trigger=state.trigger or TriggerKind.STORE,
            termination=state.termination,
            store_misses=len(state.store_events) + state.pf_stores,
            load_misses=state.out_loads + state.pf_loads,
            inst_misses=state.out_insts + state.pf_insts,
            instructions=state.pos - state.epoch_start_pos,
        )
        return misses, record

    def apply_scout(self, record: EpochRecord, outcome: ScoutOutcome) -> None:
        """Fold one Hardware Scout episode's prefetches into its epoch."""
        record.load_misses += outcome.loads
        record.store_misses += outcome.stores
        record.inst_misses += outcome.insts
        record.scouted = True
        self.result.scout_episodes += 1

    def commit_epoch(self, record: EpochRecord) -> None:
        self.result.epochs.append(record)

    # -- run close ----------------------------------------------------------

    def finalize(self, store_unit: StoreUnit) -> SimulationResult:
        """Copy the store unit's bandwidth accounting into the result."""
        self.result.stores_committed = store_unit.stats.committed
        self.result.store_prefetch_requests = store_unit.stats.prefetch_requests
        self.result.stores_coalesced = store_unit.stats.coalesced
        self.result.sb_occupancy_hwm = store_unit.stats.sb_hwm
        self.result.sq_occupancy_hwm = store_unit.stats.sq_hwm
        return self.result
