"""The ``event`` backend: event-driven epoch scanning.

The reference scan visits every instruction of every epoch, but most of
those visits do nothing: between miss clusters the simulator is *quiescent*
(the :func:`repro.core.snapshot.is_quiescent` condition — nothing
outstanding, nothing deferred, every register ready) and a quiescent scan
step over a hit is a pure no-op except for two store-unit counters.  This
backend derives, once per trace, the next *interesting* position from each
position — the wakeup set of the store unit and scoreboard — and advances
the scan cursor over quiescent spans in O(1) instead of iterating them.

Safety argument (the differential suite enforces it bit-for-bit):

- Skips happen only while every register-ready epoch is ``<= cur`` and
  nothing blocks retirement — the scan started the epoch with the
  :func:`is_quiescent` core conditions (minus the resolved-lookahead
  clause — safe, because every miss position is in the interesting table
  whether or not it was prefetched) and nothing has since set
  ``blocking``.  Under that invariant ALU/load/branch handling cannot
  defer, terminate, or write a scoreboard value any later comparison could
  distinguish (all reads are threshold tests against the current epoch),
  and the invariant itself can only break through ``blocking`` — which
  permanently disarms the scan.
- *Interesting* positions — instruction misses, data misses (loads,
  stores, CAS, including SMAC hits, which have their own accounting), and
  the serializing classes (MEMBAR/ISYNC/LWSYNC) — are never skipped; the
  scan lands on them and runs the reference code.
- **Clean mode** (store unit drained, no store events): plain stores (and
  CAS, whose store half is a plain hit once drained) take the store
  unit's fast path: ``dispatched += 1; committed += 1`` and nothing else.
  The skip adds the same two counters in bulk from a prefix sum.  A
  pending ``lwsync`` barrier forces the slow path (queue occupancy,
  high-water marks), so a second table treats every store-class position
  as interesting while a barrier is pending.
- **Store-shadow mode** (store misses outstanding, nothing blocking):
  registers are still clean, so non-store instructions remain no-ops, but
  every store-class position must execute (dispatch walks the occupied
  queues) and the overlapped-store drain stops being a no-op at the first
  *ripeness* point ``min(issue_position) + overlap_depth``.  The skip
  therefore jumps to the nearest of the next store-class/interesting
  position and the ripeness point, performing no bulk accounting.

Termination conditions therefore cannot fire inside a skipped span, and
positions, epoch boundaries, resolved sets, and every result counter match
the reference exactly.  (Register-ready values may differ *below* ``cur``
where a skipped hit would have raised them to ``cur`` — invisible to every
comparison, including ``is_quiescent`` at shard boundaries.)
"""

from __future__ import annotations

from typing import Sequence

from ...isa import InstructionClass
from ...memory.annotate import AnnotatedTrace
from ..backend import Backend, EpochDriver
from ..epoch import TerminationCondition, TriggerKind
from ..mlpsim import MlpSimulator
from ..window import DeferredLoad, EpochAccountant, WindowState

__all__ = ["EventBackend", "EventSimulator", "SkipTables", "build_skip_tables"]


class SkipTables:
    """Per-trace next-interesting-position tables (configuration-free).

    ``next_plain[i]``   — first position ``>= i`` the armed scan must
                          execute when no store barrier is pending.
    ``next_barrier[i]`` — same, while an ``lwsync`` barrier is pending
                          (every store-class position becomes interesting).
    ``store_prefix[i]`` — count of plain (non-data-miss) store-class
                          positions in ``[0, i)``; the bulk fast-path
                          dispatch/commit accounting for a skipped span is
                          ``store_prefix[b] - store_prefix[a]``.

    All three have length ``n + 1`` with position ``n`` as its own
    fixpoint, so a skip may land exactly on end-of-trace.
    """

    __slots__ = ("n", "next_plain", "next_barrier", "store_prefix")

    def __init__(
        self,
        n: int,
        next_plain: Sequence[int],
        next_barrier: Sequence[int],
        store_prefix: Sequence[int],
    ) -> None:
        self.n = n
        self.next_plain = next_plain
        self.next_barrier = next_barrier
        self.store_prefix = store_prefix


def build_skip_tables(trace: AnnotatedTrace) -> SkipTables:
    """One backward pass deriving the wakeup tables for *trace*."""
    n = len(trace)
    next_plain = [n] * (n + 1)
    next_barrier = [n] * (n + 1)
    store_prefix = [0] * (n + 1)
    kind_store = InstructionClass.STORE
    kind_store_cond = InstructionClass.STORE_COND
    kind_cas = InstructionClass.CAS
    kind_membar = InstructionClass.MEMBAR
    kind_isync = InstructionClass.ISYNC
    kind_lwsync = InstructionClass.LWSYNC
    upcoming_plain = n
    upcoming_barrier = n
    for i in range(n - 1, -1, -1):
        inst, info = trace[i]
        kind = inst.kind
        storeish = (
            kind is kind_store or kind is kind_store_cond or kind is kind_cas
        )
        if (
            info.inst_miss
            or info.data_miss
            or kind is kind_membar
            or kind is kind_isync
            or kind is kind_lwsync
        ):
            upcoming_plain = i
            upcoming_barrier = i
        elif storeish:
            upcoming_barrier = i
            store_prefix[i] = 1  # plain store-class position
        next_plain[i] = upcoming_plain
        next_barrier[i] = upcoming_barrier
    count = 0
    for i in range(n):
        flagged = store_prefix[i]
        store_prefix[i] = count
        count += flagged
    store_prefix[n] = count
    return SkipTables(n, next_plain, next_barrier, store_prefix)


class EventSimulator(MlpSimulator):
    """A :class:`MlpSimulator` whose window scan skips quiescent spans.

    Everything outside :meth:`_scan_window` — the epoch loop, resume /
    stop / checkpoint instrumentation, scout episodes, the class handlers —
    is inherited unchanged; only the hot per-instruction walk is replaced
    by the armed-skip variant described in the module docstring.
    """

    __slots__ = ("_skip_tables", "_skip_trace")

    def __init__(self, config, observer=None) -> None:
        super().__init__(config, observer)
        self._skip_tables: SkipTables | None = None
        self._skip_trace: AnnotatedTrace | None = None

    def install_tables(
        self, trace: AnnotatedTrace, tables: SkipTables
    ) -> None:
        """Adopt precomputed tables for *trace* (the batch backend shares
        one build across all lanes replaying the same trace)."""
        if tables.n != len(trace):
            raise ValueError(
                f"skip tables cover {tables.n} instructions, "
                f"trace has {len(trace)}"
            )
        self._skip_tables = tables
        self._skip_trace = trace

    def _tables_for(self, trace: AnnotatedTrace) -> SkipTables:
        if self._skip_trace is not trace:
            self.install_tables(trace, build_skip_tables(trace))
        return self._skip_tables  # type: ignore[return-value]

    # The body below is the reference `MlpSimulator._scan_window` with the
    # armed-skip block added at the top of the loop; every other line is
    # kept verbatim so the two stay diffable.
    def _scan_window(
        self,
        trace: AnnotatedTrace,
        state: WindowState,
        accountant: EpochAccountant,
    ) -> None:
        tables = self._tables_for(trace)
        next_plain = tables.next_plain
        next_barrier = tables.next_barrier
        store_prefix = tables.store_prefix

        core = self.core
        n = len(trace)
        cur = state.cur
        resolved = state.resolved
        scoreboard = state.scoreboard
        ready = scoreboard._ready
        replay = state.replay
        deferred_other = state.deferred_other
        issue_window = core.issue_window
        rob_limit = core.rob
        load_buffer = core.load_buffer
        serial_handlers = self._serial_handlers
        handle_store = self._handle_store
        kind_alu = InstructionClass.ALU
        kind_nop = InstructionClass.NOP
        kind_prefetch = InstructionClass.PREFETCH
        kind_load = InstructionClass.LOAD
        kind_load_locked = InstructionClass.LOAD_LOCKED
        kind_store = InstructionClass.STORE
        kind_store_cond = InstructionClass.STORE_COND
        kind_branch = InstructionClass.BRANCH
        kind_call = InstructionClass.CALL
        kind_return = InstructionClass.RETURN
        pos = state.pos

        unit = state.store_unit
        stats = unit.stats
        overlap_depth = self.overlap_depth
        # Armed iff nothing blocks retirement, nothing is deferred, and
        # every register is ready by `cur` (the is_quiescent core
        # conditions minus the resolved clause — see module docstring).
        # The register invariant can only break via `blocking`, so it is
        # checked once here; `blocking` kills the armed state for good.
        armed = (
            not state.blocking
            and state.out_loads == 0
            and state.out_insts == 0
            and not replay
            and not deferred_other
            and state.iw_occ < issue_window
        )
        if armed:
            for epoch in ready:
                if epoch > cur:
                    armed = False
                    break

        while True:
            if armed:
                if state.blocking:
                    # First load/CAS miss: registers may be poisoned from
                    # here on; never re-armed within this scan.
                    armed = False
                elif state.store_events or unit.sb or unit.sq:
                    # Store-shadow mode: stop at every store-class or
                    # interesting position (next_barrier covers both) and
                    # at the first overlapped-drain ripeness point.
                    nxt = next_barrier[pos]
                    events = state.store_events
                    if events:
                        ripe = overlap_depth + min(
                            e.issue_position for e in events
                        )
                        if ripe < nxt:
                            nxt = ripe
                    if nxt > pos:
                        pos = nxt
                else:
                    # Clean mode: the store unit is drained, so skipped
                    # plain stores take its fast path — bulk-account them
                    # from the prefix sum.
                    nxt = (
                        next_barrier if unit._pending_barrier else next_plain
                    )[pos]
                    if nxt > pos:
                        skipped = store_prefix[nxt] - store_prefix[pos]
                        if skipped:
                            stats.dispatched += skipped
                            stats.committed += skipped
                        pos = nxt

            if (
                state.store_events
                and not state.blocking
                and state.out_loads == 0
            ):
                state.pos = pos
                self._drain_overlapped_stores(state, accountant)

            if pos >= n:
                state.termination = TerminationCondition.END_OF_TRACE
                break

            if state.iw_occ >= issue_window or (
                state.blocking and (
                    state.rob_occ >= rob_limit
                    or state.loads_inflight >= load_buffer
                )
            ):
                state.termination = (
                    TerminationCondition.STORE_QUEUE_WINDOW_FULL
                    if state.sq_full_seen
                    else TerminationCondition.WINDOW_FULL
                )
                break

            inst, info = trace[pos]

            if info.inst_miss and pos not in resolved:
                resolved.add(pos)
                state.out_insts += 1
                if state.trigger is None:
                    state.trigger = TriggerKind.INSTRUCTION
                    state.first_issue_pos = pos
                state.termination = TerminationCondition.INSTRUCTION_MISS
                break  # pos stays: the instruction executes next epoch

            kind = inst.kind

            if kind is kind_alu or kind is kind_nop or kind is kind_prefetch:
                latest = 0
                for reg in inst.srcs:
                    if reg > 0:
                        epoch = ready[reg]
                        if epoch > latest:
                            latest = epoch
                dest = inst.dest
                if dest > 0:
                    value = latest if latest > cur else cur
                    if value > ready[dest]:
                        ready[dest] = value
                if latest > cur:
                    state.iw_occ += 1
                    deferred_other.append(latest)
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_load or kind is kind_load_locked:
                latest = 0
                for reg in inst.srcs:
                    if reg > 0:
                        epoch = ready[reg]
                        if epoch > latest:
                            latest = epoch
                will_miss = info.data_miss and pos not in resolved
                if latest > cur:
                    resolved.add(pos)
                    replay.append(DeferredLoad(
                        exec_epoch=latest,
                        index=pos,
                        dest=inst.dest,
                        missing=will_miss,
                    ))
                    dest = inst.dest
                    if dest > 0:
                        value = latest + 1 if will_miss else latest
                        if value > ready[dest]:
                            ready[dest] = value
                    state.iw_occ += 1
                elif will_miss:
                    resolved.add(pos)
                    state.pos = pos
                    state.note_load_miss(inst.dest)
                else:
                    dest = inst.dest
                    if dest > 0 and cur > ready[dest]:
                        ready[dest] = cur
                    if state.blocking:
                        state.loads_inflight += 1
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_branch or kind is kind_call or kind is kind_return:
                if info.mispredicted:
                    latest = 0
                    for reg in inst.srcs:
                        if reg > 0:
                            epoch = ready[reg]
                            if epoch > latest:
                                latest = epoch
                    if latest > cur and state.out_loads > 0:
                        state.termination = (
                            TerminationCondition.MISPRED_BRANCH
                        )
                        pos += 1  # resolves at epoch end; resume after it
                        break
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            if kind is kind_store or kind is kind_store_cond:
                state.pos = pos
                handle_store(state, accountant, inst, info)
                if state.termination is not None:
                    break  # pos stays: re-dispatch next epoch
                pos += 1
                if state.blocking:
                    state.rob_occ += 1
                continue

            state.pos = pos
            serial_handlers[kind](trace, state, inst, info)
            if state.termination is not None:
                break  # pos stays: the stalled instruction retries next epoch
            pos += 1
            if state.blocking:
                state.rob_occ += 1

        state.pos = pos
        if state.observer is not None and state.termination is not None:
            state.observer.on_termination(state.termination, pos, cur)


class EventBackend(Backend):
    """Event-driven scanning behind the standard backend lifecycle.

    The backend keeps the skip tables of the most recent trace (they are
    config-independent), so a sweep running many configurations over one
    annotated trace builds them once instead of once per job.  The cache
    is a single-slot ``(trace, tables)`` tuple assigned atomically, which
    keeps concurrent use merely wasteful, never wrong.
    """

    name = "event"

    def __init__(self) -> None:
        self._cache = (None, None)

    def _tables_for(self, trace):
        cached_trace, cached_tables = self._cache
        if cached_trace is not trace:
            cached_tables = build_skip_tables(trace)
            # Holding the trace reference keeps its id() stable for as
            # long as the cache entry can match it.
            self._cache = (trace, cached_tables)
        return cached_tables

    def _simulator(self, config, trace) -> EventSimulator:
        simulator = EventSimulator(config)
        simulator.install_tables(trace, self._tables_for(trace))
        return simulator

    def prepare(self, config, trace, observer=None, **kwargs):
        return EpochDriver(
            self._simulator(config, trace), trace, observer, **kwargs,
        )

    def simulate(self, config, trace, observer=None, **kwargs):
        return self._simulator(config, trace).run(trace, observer, **kwargs)
