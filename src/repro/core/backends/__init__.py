"""Built-in execution backends.

Importing this package registers the ``event`` and ``batch`` backends with
:mod:`repro.core.backend`'s registry (``reference`` registers itself when
the interface module loads).  The batch backend *registers* even when numpy
is absent — name resolution and the service protocol's validation must see
it — and raises :class:`~repro.errors.BackendUnavailableError` only when
asked to run.
"""

from __future__ import annotations

from ..backend import register_backend
from .batch import BatchBackend
from .events import EventBackend

__all__ = ["BatchBackend", "EventBackend"]

register_backend(EventBackend())
register_backend(BatchBackend())
