"""The ``batch`` backend: a numpy struct-of-arrays lockstep kernel.

Sweeps and sharded runs execute many *independent* simulations over a
handful of shared annotated traces.  The process-pool path pays per-point
process and pickling overhead; this backend instead advances N simulations
in lockstep inside one process:

- per distinct trace, the event-skip wakeup tables
  (:class:`~repro.core.backends.events.SkipTables`) are built **once**
  with vectorized numpy column passes and shared by every lane replaying
  that trace (memory layout: three contiguous ``int64`` arrays of length
  ``n + 1`` — next-interesting position with/without a pending barrier,
  and the plain-store prefix sum);
- lane state is kept struct-of-arrays (``pos`` / ``cur`` / ``done``
  vectors), and each lockstep step advances every live lane exactly one
  epoch through its :class:`~repro.core.backend.EpochDriver`;
- a lane that raises records its error and drops out of the step loop
  without poisoning its siblings — the engine maps lane outcomes back to
  per-job results.

numpy is an *optional* dependency (the ``fast`` extra).  The backend
always registers — name resolution and protocol validation must see it —
but :func:`require_numpy` raises
:class:`~repro.errors.BackendUnavailableError` with the install hint the
moment a run is attempted without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ...config import SimulationConfig
from ...errors import BackendUnavailableError
from ...memory.annotate import AnnotatedTrace
from ..backend import Backend, EpochDriver
from ..results import SimulationResult
from ..window import WindowObserver
from .events import EventSimulator, SkipTables

__all__ = [
    "BatchBackend",
    "BatchLane",
    "LaneOutcome",
    "LockstepBatch",
    "build_skip_tables_np",
    "numpy_available",
    "require_numpy",
]


def numpy_available() -> bool:
    """True when the optional ``fast`` extra (numpy) is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import numpy or raise the structured unavailability error."""
    try:
        import numpy
    except ImportError:
        raise BackendUnavailableError(
            "the 'batch' backend needs numpy, which is not installed; "
            "install the optional extra with: pip install 'repro[fast]' "
            "(or choose backend='reference'/'event')"
        ) from None
    return numpy


#: Span classification codes for the vectorized table build.
_BORING, _PLAIN_STORE, _INTERESTING = 0, 1, 2


def _classify(trace: AnnotatedTrace):
    """One linear pass distilling the trace into a tiny class column."""
    from ...isa import InstructionClass

    serializers = frozenset((
        InstructionClass.MEMBAR,
        InstructionClass.ISYNC,
        InstructionClass.LWSYNC,
    ))
    storeish = frozenset((
        InstructionClass.STORE,
        InstructionClass.STORE_COND,
        InstructionClass.CAS,
    ))
    for inst, info in trace:
        kind = inst.kind
        if info.inst_miss or info.data_miss or kind in serializers:
            yield _INTERESTING
        elif kind in storeish:
            yield _PLAIN_STORE
        else:
            yield _BORING


def build_skip_tables_np(trace: AnnotatedTrace) -> SkipTables:
    """Vectorized :func:`~repro.core.backends.events.build_skip_tables`.

    Identical output by construction: the class column is the only
    per-instruction python work; the suffix-minimum scans and the prefix
    sum run as numpy kernels.  The arrays are converted back to python
    lists because the scan loop indexes them element-wise.
    """
    np = require_numpy()
    n = len(trace)
    classes = np.fromiter(_classify(trace), dtype=np.int8, count=n)
    positions = np.arange(n, dtype=np.int64)
    sentinel = np.int64(n)

    def suffix_next(mask) -> List[int]:
        vals = np.where(mask, positions, sentinel)
        nxt = np.minimum.accumulate(vals[::-1])[::-1]
        return np.append(nxt, sentinel).tolist()

    interesting = classes == _INTERESTING
    plain_store = classes == _PLAIN_STORE
    next_plain = suffix_next(interesting)
    next_barrier = suffix_next(interesting | plain_store)
    store_prefix = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(plain_store))
    ).tolist()
    return SkipTables(n, next_plain, next_barrier, store_prefix)


@dataclass
class BatchLane:
    """One independent simulation in a lockstep batch."""

    config: SimulationConfig
    trace: AnnotatedTrace
    observer: Optional[WindowObserver] = None
    #: Extra :class:`EpochDriver` keywords (resume/stop/checkpoint hooks).
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Opaque caller tag mapped back onto the matching :class:`LaneOutcome`.
    tag: Any = None


@dataclass
class LaneOutcome:
    """What one lane produced: a result or the error that stopped it."""

    tag: Any = None
    result: Optional[SimulationResult] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


class LockstepBatch:
    """Advance N independent simulations one epoch at a time, together."""

    def __init__(self, lanes: Sequence[BatchLane]) -> None:
        self._np = require_numpy()
        self.lanes = list(lanes)
        tables_by_trace: Dict[int, SkipTables] = {}
        self.drivers: List[Optional[EpochDriver]] = []
        self.outcomes = [LaneOutcome(tag=lane.tag) for lane in self.lanes]
        for index, lane in enumerate(self.lanes):
            # id() keying is safe here: self.lanes keeps every trace alive
            # for the lifetime of the cache.
            key = id(lane.trace)
            tables = tables_by_trace.get(key)
            if tables is None:
                tables = build_skip_tables_np(lane.trace)
                tables_by_trace[key] = tables
            simulator = EventSimulator(lane.config)
            simulator.install_tables(lane.trace, tables)
            try:
                driver = EpochDriver(
                    simulator, lane.trace, lane.observer, **lane.kwargs,
                )
            except Exception as exc:  # e.g. a corrupt resume snapshot
                self.outcomes[index].error = exc
                self.drivers.append(None)
                continue
            self.drivers.append(driver)

    def run(self) -> List[LaneOutcome]:
        """Step every live lane one epoch per round until all complete."""
        np = self._np
        n_lanes = len(self.drivers)
        # Struct-of-arrays lane state: advanced in lockstep, consulted
        # vectorized for the live-lane set each round.
        done = np.zeros(n_lanes, dtype=bool)
        pos = np.zeros(n_lanes, dtype=np.int64)
        cur = np.zeros(n_lanes, dtype=np.int64)
        for index, driver in enumerate(self.drivers):
            if driver is None:
                done[index] = True
            else:
                pos[index] = driver.state.pos
                cur[index] = driver.state.cur
        while not done.all():
            for index in np.flatnonzero(~done):
                driver = self.drivers[index]
                try:
                    events = driver.advance()
                except Exception as exc:
                    self.outcomes[index].error = exc
                    done[index] = True
                    continue
                state = driver.state
                pos[index] = state.pos
                cur[index] = state.cur
                if events is None or driver.done:
                    done[index] = True
        for index, driver in enumerate(self.drivers):
            if driver is None or self.outcomes[index].error is not None:
                continue
            try:
                self.outcomes[index].result = driver.finish()
            except Exception as exc:
                self.outcomes[index].error = exc
        return self.outcomes


class BatchBackend(Backend):
    """Lockstep execution behind the standard backend lifecycle.

    A single ``prepare`` is a batch of one (the same event-skip scan over
    numpy-built tables); the distinctive entry point is
    :class:`LockstepBatch`, which the engine uses to fan whole job batches
    into one process.
    """

    name = "batch"

    def __init__(self) -> None:
        # Single-slot (trace, tables) cache, assigned atomically; sweeps
        # over one annotated trace build the numpy tables exactly once.
        self._cache = (None, None)

    def _tables_for(self, trace) -> SkipTables:
        cached_trace, cached_tables = self._cache
        if cached_trace is not trace:
            cached_tables = build_skip_tables_np(trace)
            self._cache = (trace, cached_tables)
        return cached_tables

    def prepare(self, config, trace, observer=None, **kwargs):
        simulator = EventSimulator(config)
        simulator.install_tables(trace, self._tables_for(trace))
        return EpochDriver(simulator, trace, observer, **kwargs)
