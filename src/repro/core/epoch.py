"""Epoch records, trigger kinds and the window-termination taxonomy.

The termination taxonomy reproduces the legend of the paper's Figure 3
exactly; every epoch the simulator closes is labelled with the condition
that ended its window and with the kind of off-chip access that triggered
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TriggerKind(enum.Enum):
    """What kind of off-chip access opened the epoch."""

    LOAD = "load"
    STORE = "store"
    INSTRUCTION = "instruction"


class TerminationCondition(enum.Enum):
    """Why the epoch's window stopped growing (Figure 3 legend).

    The store-related conditions distinguish whether the store queue had
    backed up first, because that identifies missing stores as the root
    cause of the stall.
    """

    #: Store buffer full, store queue NOT full first ("Store buffer full").
    STORE_BUFFER_FULL = "store_buffer_full"
    #: Store buffer full preceded by store queue full ("StQ + StBuf full").
    STORE_QUEUE_STORE_BUFFER_FULL = "store_queue_store_buffer_full"
    #: ROB or issue window full preceded by store queue full ("StQ + window full").
    STORE_QUEUE_WINDOW_FULL = "store_queue_window_full"
    #: Serializing instruction preceded by missing stores but no missing loads.
    STORE_SERIALIZE = "store_serialize"
    #: Serializing instruction preceded by at least one missing load.
    OTHER_SERIALIZE = "other_serialize"
    #: Mispredicted branch dependent on a missing load.
    MISPRED_BRANCH = "mispred_branch"
    #: Instruction fetch missed the L2.
    INSTRUCTION_MISS = "instruction_miss"
    #: ROB or issue window full, store queue not implicated.
    WINDOW_FULL = "window_full"
    #: The trace ran out while misses were outstanding.
    END_OF_TRACE = "end_of_trace"

    @property
    def store_caused(self) -> bool:
        """True when the stall is attributable to store handling."""
        return self in _STORE_CAUSED


_STORE_CAUSED = frozenset({
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
    TerminationCondition.STORE_SERIALIZE,
})


@dataclass(slots=True)
class EpochRecord:
    """Statistics of one closed epoch."""

    index: int
    trigger: TriggerKind
    termination: TerminationCondition
    store_misses: int = 0
    load_misses: int = 0
    inst_misses: int = 0
    instructions: int = 0
    scouted: bool = False

    @property
    def total_misses(self) -> int:
        return self.store_misses + self.load_misses + self.inst_misses

    @property
    def store_mlp(self) -> int:
        """Missing stores overlapped in this epoch (Figure 4 x-axis)."""
        return self.store_misses

    @property
    def load_inst_mlp(self) -> int:
        """Missing loads + instructions overlapped (Figure 4 segments)."""
        return self.load_misses + self.inst_misses
