"""Store buffer and store queue with coalescing, prefetching and
consistency-model commit rules.

Lifecycle (paper Section 2): a store is *dispatched* into the store buffer
at rename, *retired* into the store queue when it and all older instructions
complete, and *committed* when its value is written into the L2 and becomes
globally visible.

Consistency rules:

- **PC (TSO)**: stores commit strictly in order.  A missing store at the
  store-queue head blocks all younger stores.  Coalescing may only merge a
  retiring store with the youngest store-queue entry (consecutive stores).
- **WC**: stores commit out of order; hits release their entries past a
  blocked miss.  A retiring store may coalesce with any eligible entry.
  ``lwsync`` inserts a barrier: entries after it cannot commit until every
  older entry has.

Prefetch modes (Section 3.3.2): ``Sp0`` issues a store's write request only
when it reaches the queue head (PC) or when it retires (WC, whose
out-of-order commit attempts each store independently); ``Sp1`` issues a
prefetch-for-write at retire; ``Sp2`` issues it at dispatch (address
generation), covering stores still in the store buffer.

Epoch time: ``miss_issued_epoch`` records when a store's off-chip request
went out; the miss completes at the end of that epoch, so a commit attempt
in any later epoch succeeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List

from ..config import ConsistencyModel, CoreConfig, StorePrefetchMode

_NOT_ISSUED = -1


@dataclass(slots=True, eq=False)
class StoreEntry:
    """One store (or coalesced group of stores) in the SB/SQ.

    Identity semantics (``eq=False``): two distinct stores to the same
    granule are different entries until explicitly coalesced.
    """

    granule: int
    missing: bool = False
    accelerated: bool = False
    miss_issued_epoch: int = _NOT_ISSUED
    issue_position: int = 0
    barrier_before: bool = False
    release: bool = False

    @property
    def issued(self) -> bool:
        return self.miss_issued_epoch != _NOT_ISSUED

    def completed(self, current_epoch: int) -> bool:
        """True when this entry's write can be considered globally visible."""
        if self.accelerated or not self.missing:
            return True
        return self.issued and self.miss_issued_epoch < current_epoch


@dataclass(slots=True)
class StoreUnitStats:
    """Store-path activity, including the L2 bandwidth accounting behind
    the paper's SMAC motivation (Section 3.3.2/3.3.3).

    Every committed store costs one L2 write request.  A store *prefetch*
    (Sp1/Sp2, or WC's execute-time ownership request) costs an additional
    request — "two write requests may potentially be issued for every
    store".  Accelerated (SMAC-hit) stores commit with no prefetch request,
    which is exactly the bandwidth the SMAC conserves.
    """

    dispatched: int = 0
    coalesced: int = 0
    committed: int = 0
    misses_issued: int = 0
    prefetch_requests: int = 0
    silently_completed: int = 0
    # Occupancy high-water marks: the deepest the store buffer / store
    # queue ever got.  Maintained on the (slow-path) appends only — a
    # fast-path committed store never occupies either structure.
    sb_hwm: int = 0
    sq_hwm: int = 0

    @property
    def l2_store_requests(self) -> int:
        """Total core-to-L2 write-path requests."""
        return self.committed + self.prefetch_requests

    @property
    def bandwidth_overhead(self) -> float:
        """Extra requests per committed store caused by prefetching."""
        if self.committed == 0:
            return 0.0
        return self.prefetch_requests / self.committed


@dataclass(slots=True)
class DispatchResult:
    """Outcome of pushing one store into the unit."""

    accepted: bool
    issued: List[StoreEntry] = field(default_factory=list)
    retire_stalled_sq_full: bool = False


#: Shared results for the two side-effect-free dispatch outcomes.  Callers
#: treat DispatchResult as read-only, so the common cases (buffer full;
#: hit store committed straight through an empty unit) reuse one object
#: instead of allocating.
_REJECTED = DispatchResult(accepted=False)
_FAST_COMMITTED = DispatchResult(accepted=True)


class StoreUnit:
    """Store buffer + store queue under one consistency model."""

    __slots__ = (
        "config",
        "model",
        "sb",
        "sq",
        "stats",
        "_pending_barrier",
        "_sb_limit",
        "_sq_limit",
        "_coalesce_bytes",
        "_is_pc",
        "_issue_at_execute",
        "_issues_any_at_retire",
    )

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.model = config.consistency
        self.sb: Deque[StoreEntry] = deque()
        self.sq: Deque[StoreEntry] = deque()
        self.stats = StoreUnitStats()
        self._pending_barrier = False
        # The consistency model and prefetch mode are fixed per run, so the
        # per-store policy questions are answered once here.
        self._sb_limit = config.store_buffer
        self._sq_limit = config.store_queue
        self._coalesce_bytes = config.coalesce_bytes
        self._is_pc = config.consistency is ConsistencyModel.PC
        self._issue_at_execute = (
            config.store_prefetch is StorePrefetchMode.AT_EXECUTE
            # WC machines acquire ownership as soon as the store address is
            # known: stores are fully overlappable (paper Example 6, and
            # the epoch-model predecessor's WC assumption).
            or config.consistency is ConsistencyModel.WC
        )
        self._issues_any_at_retire = (
            config.store_prefetch is StorePrefetchMode.AT_RETIRE
            # WC commits out of order: each retired store's write is
            # attempted independently, so its off-chip request goes out at
            # retire even without a prefetcher.
            or config.consistency is ConsistencyModel.WC
        )

    # -- capacity ----------------------------------------------------------

    @property
    def sb_full(self) -> bool:
        return len(self.sb) >= self._sb_limit

    @property
    def sq_full(self) -> bool:
        return len(self.sq) >= self._sq_limit

    @property
    def drained(self) -> bool:
        """True when no store is waiting anywhere (serializer precondition)."""
        return not self.sb and not self.sq

    def all_completed(self, epoch: int) -> bool:
        """True when every resident store is (or is as good as) committed.

        A serializing instruction under PC may execute once this holds: the
        remaining entries are hits or already-returned misses that drain on
        the next commit pass without exposing any latency.
        """
        for queue in (self.sb, self.sq):
            for entry in queue:
                if entry.missing and not entry.accelerated and not (
                    entry.miss_issued_epoch != _NOT_ISSUED
                    and entry.miss_issued_epoch < epoch
                ):
                    return False
        return True

    @property
    def occupancy(self) -> int:
        return len(self.sb) + len(self.sq)

    def granule_of(self, address: int) -> int:
        """Map an address to its coalescing granule (line-sized when off)."""
        gran = self.config.coalesce_bytes or 64
        return address & ~(gran - 1)

    # -- barriers -------------------------------------------------------------

    def add_barrier(self) -> None:
        """An ``lwsync`` retired: the next store to retire is ordered after
        everything currently pending."""
        self._pending_barrier = True

    # -- dispatch / retire -------------------------------------------------------

    def dispatch(
        self, entry: StoreEntry, retirable: bool, epoch: int
    ) -> DispatchResult:
        """Insert a newly renamed store.

        *retirable* is False when an older instruction blocks retirement
        (e.g. a missing load at the ROB head), in which case the store parks
        in the store buffer.  Returns ``accepted=False`` — without side
        effects — when the store buffer is full: the caller terminates the
        epoch window and retries next epoch.
        """
        sb = self.sb
        if len(sb) >= self._sb_limit:
            return _REJECTED
        stats = self.stats
        # Fast path for the dominant case: a store needing no off-chip
        # request dispatched into an empty, unblocked unit.  It retires and
        # commits in the same pump with no issue, no coalescing candidate
        # and no possible stall, so the full machinery below reduces to two
        # counter bumps.
        if (
            retirable
            and not sb
            and not self.sq
            and not self._pending_barrier
            and (entry.accelerated or not entry.missing)
        ):
            stats.dispatched += 1
            stats.committed += 1
            return _FAST_COMMITTED
        stats.dispatched += 1
        issued: List[StoreEntry] = []
        if (
            self._issue_at_execute
            and entry.missing
            and not entry.accelerated
            and entry.miss_issued_epoch == _NOT_ISSUED
        ):
            self._issue(entry, epoch, issued, prefetch=True)
        sb.append(entry)
        if len(sb) > stats.sb_hwm:
            stats.sb_hwm = len(sb)
        stalled = False
        if retirable:
            stalled = self._pump(epoch, issued)
        return DispatchResult(
            accepted=True, issued=issued, retire_stalled_sq_full=stalled
        )

    def pump(self, epoch: int) -> tuple[List[StoreEntry], bool]:
        """Retire and commit until quiescent.

        Models the continuously pipelined store path: hit stores flow
        through the queue without lingering, completed misses drain, and an
        Sp0 missing store newly at the queue head sends its write request
        off chip.  Returns the entries whose misses were newly issued and
        whether retirement is stalled on a full store queue.
        """
        issued: List[StoreEntry] = []
        stalled = self._pump(epoch, issued)
        return issued, stalled

    def _pump(self, epoch: int, issued: List[StoreEntry]) -> bool:
        stalled = False
        if self._is_pc:
            commit = self._commit_pc
        else:
            commit = self._commit_wc
        while True:
            before_sb = len(self.sb)
            before_sq = len(self.sq)
            commit(epoch, issued)
            stalled = self._retire_all(epoch, issued)
            commit(epoch, issued)
            if len(self.sb) == before_sb and len(self.sq) == before_sq:
                return stalled

    def _retire_all(self, epoch: int, issued: List[StoreEntry]) -> bool:
        """Move SB entries into the SQ; returns True when blocked on SQ-full."""
        sb = self.sb
        sq = self.sq
        sq_limit = self._sq_limit
        while sb:
            entry = sb[0]
            if self._pending_barrier:
                entry.barrier_before = True
                self._pending_barrier = False
            if self._try_coalesce(entry):
                sb.popleft()
                self.stats.coalesced += 1
                continue
            if len(sq) >= sq_limit:
                return True
            sb.popleft()
            sq.append(entry)
            if len(sq) > self.stats.sq_hwm:
                self.stats.sq_hwm = len(sq)
            if (
                self._issues_any_at_retire
                and entry.missing
                and not entry.accelerated
                and entry.miss_issued_epoch == _NOT_ISSUED
            ):
                self._issue(entry, epoch, issued, prefetch=True)
        return False

    def _try_coalesce(self, entry: StoreEntry) -> bool:
        if not self._coalesce_bytes or not self.sq:
            return False
        if entry.barrier_before:
            return False  # ordering: may not merge into pre-barrier stores
        if self._is_pc:
            target = self.sq[-1]
            if target.granule == entry.granule:
                target.missing = target.missing or entry.missing
                target.release = target.release or entry.release
                return True
            return False
        # WC: merge with any eligible entry, scanning young to old, without
        # crossing a barrier (that would reorder the store before it).
        for target in reversed(self.sq):
            if target.granule == entry.granule:
                target.missing = target.missing or entry.missing
                target.release = target.release or entry.release
                return True
            if target.barrier_before:
                break
        return False

    # -- commit ----------------------------------------------------------------

    def commit_pass(self, epoch: int) -> List[StoreEntry]:
        """Commit everything the consistency model allows in *epoch*.

        Returns the store entries whose off-chip requests were newly issued
        (the caller counts them as this epoch's outstanding store misses).
        """
        issued: List[StoreEntry] = []
        if self.model is ConsistencyModel.PC:
            self._commit_pc(epoch, issued)
        else:
            self._commit_wc(epoch, issued)
        return issued

    def _commit_pc(self, epoch: int, issued: List[StoreEntry]) -> None:
        sq = self.sq
        stats = self.stats
        while sq:
            head = sq[0]
            # Inlined StoreEntry.completed(): visible when a hit, SMAC-hit,
            # or a miss issued in an earlier (hence finished) epoch.
            if not head.missing or head.accelerated or (
                head.miss_issued_epoch != _NOT_ISSUED
                and head.miss_issued_epoch < epoch
            ):
                sq.popleft()
                stats.committed += 1
                continue
            if head.miss_issued_epoch == _NOT_ISSUED:
                # Sp0: the head's write request goes off chip now.
                self._issue(head, epoch, issued)
            return

    def _commit_wc(self, epoch: int, issued: List[StoreEntry]) -> None:
        sq = self.sq
        if not sq:
            return
        survivors: List[StoreEntry] = []
        barrier_blocked = False
        committed = 0
        for entry in sq:
            if barrier_blocked:
                survivors.append(entry)
                continue
            if entry.barrier_before and survivors:
                # Ordered after a still-pending older store: this entry and
                # everything younger wait for the next pass.
                barrier_blocked = True
                survivors.append(entry)
                continue
            if not entry.missing or entry.accelerated or (
                entry.miss_issued_epoch != _NOT_ISSUED
                and entry.miss_issued_epoch < epoch
            ):
                committed += 1
                continue
            if entry.miss_issued_epoch == _NOT_ISSUED:
                self._issue(entry, epoch, issued)
            survivors.append(entry)
        if committed:
            self.stats.committed += committed
            self.sq = deque(survivors)
        # Nothing committed → the queue contents are unchanged (issue only
        # mutates entries in place), so skip the deque rebuild.

    def _issue(
        self,
        entry: StoreEntry,
        epoch: int,
        issued: List[StoreEntry],
        prefetch: bool = False,
    ) -> None:
        entry.miss_issued_epoch = epoch
        self.stats.misses_issued += 1
        if prefetch:
            # An extra L2 write-path request beyond the eventual commit.
            self.stats.prefetch_requests += 1
        issued.append(entry)

    # -- silent completion ------------------------------------------------------

    def complete_silently(self, entries: List[StoreEntry]) -> None:
        """Commit store misses whose latency was fully hidden by computation.

        Called by the simulator when the overlap window elapses with no
        stall: the listed entries drain without an epoch being charged.
        """
        for entry in entries:
            entry.accelerated = True  # treat as globally visible
            self.stats.silently_completed += 1
        # Sweep out anything now committable (epoch value irrelevant:
        # accelerated entries always complete).
        if self.model is ConsistencyModel.PC:
            while self.sq and self.sq[0].accelerated:
                self.sq.popleft()
                self.stats.committed += 1
        else:
            self.sq = deque(e for e in self.sq if not e.accelerated)

    def flush_window_stores(self) -> int:
        """Drop store-buffer contents (scout exit re-dispatches them)."""
        dropped = len(self.sb)
        self.sb.clear()
        return dropped
