"""Register dependence tracking in epoch time.

The epoch model ignores on-chip latencies, so the only dependence that
matters is *which epoch* a value becomes usable in: values produced on chip
are usable in the producing epoch; values produced by an off-chip missing
load are usable in the epoch **after** the one in which the miss issued
(the miss completes at epoch end).

The scoreboard maps each architectural register to the first epoch in which
its value can be consumed.
"""

from __future__ import annotations

from typing import Iterable

from ..isa.registers import NUM_REGISTERS, REG_ZERO


class RegisterScoreboard:
    """Per-register earliest-consumable-epoch tracking."""

    __slots__ = ("_ready",)

    def __init__(self, num_registers: int = NUM_REGISTERS) -> None:
        if num_registers <= 0:
            raise ValueError("register file must be non-empty")
        self._ready = [0] * num_registers

    def ready_epoch(self, srcs: Iterable[int]) -> int:
        """Earliest epoch in which all of *srcs* are available.

        The zero register and the "no register" sentinel never delay
        (``REG_NONE`` is negative and ``REG_ZERO`` is 0, so both fall under
        the single ``<= 0`` guard; architectural registers are 1..N-1).
        Accepts raw ``Instruction.srcs`` as well as pre-filtered tuples.
        """
        latest = 0
        ready = self._ready
        for reg in srcs:
            if reg <= 0:
                continue
            epoch = ready[reg]
            if epoch > latest:
                latest = epoch
        return latest

    def is_ready(self, srcs: Iterable[int], epoch: int) -> bool:
        """True when every source register is usable in *epoch*."""
        return self.ready_epoch(srcs) <= epoch

    def produce_on_chip(self, dest: int, epoch: int) -> None:
        """Record an on-chip producer: value usable within the same epoch."""
        if dest > REG_ZERO:
            self._ready[dest] = max(self._ready[dest], epoch)

    def produce_off_chip(self, dest: int, epoch: int) -> None:
        """Record a missing-load producer: usable only after *epoch* ends."""
        if dest > REG_ZERO:
            self._ready[dest] = max(self._ready[dest], epoch + 1)

    def depends_on_epoch_miss(self, srcs: Iterable[int], epoch: int) -> bool:
        """True when some source was produced by a miss of *epoch* or later.

        This is the "dependent on missing load" predicate used for the
        mispredicted-branch window termination condition and for deciding
        which instructions defer to the next epoch.
        """
        return self.ready_epoch(srcs) > epoch
