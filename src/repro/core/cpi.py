"""EPI -> CPI translation (paper Section 3.4).

The paper's performance decomposition::

    CPI_overall = CPI_on-chip x (1 - Overlap) + EPI x MissPenalty

``CPI_on-chip`` is what a cycle simulator measures with a perfect outermost
on-chip cache; ``Overlap`` is the (small, roughly mechanism-independent)
fraction of on-chip cycles hidden under off-chip accesses; the second term
is the off-chip CPI that the epoch model predicts.  Table 3 of the paper
gives CPI_on-chip for the four commercial workloads under the default core,
reproduced here as :data:`PAPER_CPI_ON_CHIP`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Paper Table 3: CPI_on-chip for the default processor configuration.
PAPER_CPI_ON_CHIP = {
    "database": 1.11,
    "tpcw": 1.12,
    "specjbb": 0.95,
    "specweb": 1.38,
}


def off_chip_cpi(epi: float, miss_penalty: int) -> float:
    """Off-chip CPI contributed by epochs: ``EPI x MissPenalty``."""
    if epi < 0:
        raise ConfigError("EPI must be non-negative")
    if miss_penalty <= 0:
        raise ConfigError("miss penalty must be positive")
    return epi * miss_penalty


def overall_cpi(
    cpi_on_chip: float,
    epi: float,
    miss_penalty: int,
    overlap: float = 0.0,
) -> float:
    """Total CPI per the paper's decomposition."""
    if not 0.0 <= overlap <= 1.0:
        raise ConfigError("overlap must be a fraction in [0, 1]")
    if cpi_on_chip <= 0:
        raise ConfigError("CPI_on-chip must be positive")
    return cpi_on_chip * (1.0 - overlap) + off_chip_cpi(epi, miss_penalty)


@dataclass(frozen=True)
class CpiModel:
    """A bound CPI decomposition for one workload/machine pair."""

    cpi_on_chip: float
    miss_penalty: int
    overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.cpi_on_chip <= 0:
            raise ConfigError("CPI_on-chip must be positive")
        if self.miss_penalty <= 0:
            raise ConfigError("miss penalty must be positive")
        if not 0.0 <= self.overlap <= 1.0:
            raise ConfigError("overlap must be a fraction in [0, 1]")

    def off_chip(self, epi: float) -> float:
        return off_chip_cpi(epi, self.miss_penalty)

    def overall(self, epi: float) -> float:
        return overall_cpi(self.cpi_on_chip, epi, self.miss_penalty, self.overlap)

    def off_chip_share(self, epi: float) -> float:
        """Fraction of total CPI spent off chip."""
        total = self.overall(epi)
        return self.off_chip(epi) / total if total else 0.0
