"""Simulation results: EPI, MLP and the distributions behind the figures."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .epoch import EpochRecord, TerminationCondition, TriggerKind


@dataclass(frozen=True)
class MlpDistribution:
    """Joint distribution of (store MLP, load+instruction MLP) over epochs.

    This is the paper's Figure 4: each bar is the fraction of epochs with a
    given store MLP; segments within a bar split by combined load +
    instruction MLP.  Fractions are over *all* epochs, so the bars for
    store MLP >= 1 need not sum to one.
    """

    total_epochs: int
    cells: Dict[Tuple[int, int], int]

    def fraction(self, store_mlp: int, load_inst_mlp: int) -> float:
        """Fraction of epochs with exactly this (store, load+inst) MLP pair."""
        if self.total_epochs == 0:
            return 0.0
        return self.cells.get((store_mlp, load_inst_mlp), 0) / self.total_epochs

    def store_mlp_fraction(self, store_mlp: int) -> float:
        """Fraction of epochs with exactly *store_mlp* missing stores."""
        if self.total_epochs == 0:
            return 0.0
        count = sum(
            n for (s, _), n in self.cells.items() if s == store_mlp
        )
        return count / self.total_epochs

    def bucketed(
        self, store_cap: int = 10, load_cap: int = 5
    ) -> Dict[Tuple[int, int], float]:
        """Fractions with the top buckets capped (">= cap"), figure style."""
        out: Counter[Tuple[int, int]] = Counter()
        for (s, li), n in self.cells.items():
            out[(min(s, store_cap), min(li, load_cap))] += n
        if self.total_epochs == 0:
            return {}
        return {key: n / self.total_epochs for key, n in out.items()}


@dataclass
class SimulationResult:
    """Everything MLPsim measured over one annotated trace."""

    instructions: int
    epochs: List[EpochRecord] = field(default_factory=list)
    fully_overlapped_stores: int = 0
    accelerated_stores: int = 0
    scout_episodes: int = 0
    # L2 write-path bandwidth (paper Sections 3.3.2-3.3.3): every committed
    # store is one request; prefetch-for-write requests come on top.
    stores_committed: int = 0
    store_prefetch_requests: int = 0
    stores_coalesced: int = 0
    # Occupancy high-water marks of the store buffer / store queue over the
    # whole run (observability: /metrics gauges, `mlpsim obs report`).
    sb_occupancy_hwm: int = 0
    sq_occupancy_hwm: int = 0

    # -- headline metrics --------------------------------------------------

    @property
    def epoch_count(self) -> int:
        return len(self.epochs)

    @property
    def epi(self) -> float:
        """Epochs per instruction (linear in off-chip CPI)."""
        if self.instructions == 0:
            return 0.0
        return self.epoch_count / self.instructions

    @property
    def epi_per_1000(self) -> float:
        """Epochs per 1000 instructions (the paper's figure unit)."""
        return 1000.0 * self.epi

    @property
    def total_misses(self) -> int:
        return sum(e.total_misses for e in self.epochs)

    @property
    def mlp(self) -> float:
        """Overall MLP: off-chip accesses per epoch."""
        if not self.epochs:
            return 0.0
        return self.total_misses / self.epoch_count

    @property
    def store_mlp(self) -> float:
        """Average missing stores outstanding when at least one is."""
        store_epochs = [e for e in self.epochs if e.store_misses > 0]
        if not store_epochs:
            return 0.0
        return sum(e.store_misses for e in store_epochs) / len(store_epochs)

    @property
    def store_miss_count(self) -> int:
        """Store misses that participated in epochs (excludes silent/SMAC)."""
        return sum(e.store_misses for e in self.epochs)

    @property
    def store_overlap_fraction(self) -> float:
        """Fraction of missing stores fully overlapped with computation
        (the paper's Table 2)."""
        total = (
            self.store_miss_count
            + self.fully_overlapped_stores
            + self.accelerated_stores
        )
        if total == 0:
            return 0.0
        return self.fully_overlapped_stores / total

    @property
    def l2_store_requests(self) -> int:
        """Core-to-L2 write-path requests (commits + prefetches)."""
        return self.stores_committed + self.store_prefetch_requests

    @property
    def store_bandwidth_overhead(self) -> float:
        """Extra L2 write requests per committed store due to prefetching.

        This is the cost store prefetching pays and the SMAC avoids: an
        overhead of 1.0 means every store consumed two write-path slots.
        """
        if self.stores_committed == 0:
            return 0.0
        return self.store_prefetch_requests / self.stores_committed

    # -- distributions ------------------------------------------------------------

    def termination_histogram(self) -> Dict[TerminationCondition, int]:
        counts: Counter[TerminationCondition] = Counter()
        for epoch in self.epochs:
            counts[epoch.termination] += 1
        return dict(counts)

    def termination_fractions(
        self, store_mlp_at_least: int = 0
    ) -> Dict[TerminationCondition, float]:
        """Termination mix, optionally restricted to epochs with store MLP >= k
        (Figure 3 normalizes over epochs where store MLP >= 1)."""
        selected = [
            e for e in self.epochs if e.store_misses >= store_mlp_at_least
        ]
        if not selected:
            return {}
        counts: Counter[TerminationCondition] = Counter()
        for epoch in selected:
            counts[epoch.termination] += 1
        denominator = len(self.epochs) if store_mlp_at_least else len(selected)
        return {cond: n / denominator for cond, n in counts.items()}

    def trigger_histogram(self) -> Dict[TriggerKind, int]:
        counts: Counter[TriggerKind] = Counter()
        for epoch in self.epochs:
            counts[epoch.trigger] += 1
        return dict(counts)

    def mlp_distribution(self) -> MlpDistribution:
        cells: Counter[Tuple[int, int]] = Counter()
        for epoch in self.epochs:
            cells[(epoch.store_mlp, epoch.load_inst_mlp)] += 1
        return MlpDistribution(total_epochs=self.epoch_count, cells=dict(cells))

    # -- convenience ----------------------------------------------------------------

    def off_chip_cpi(self, miss_penalty: int) -> float:
        """Off-chip CPI = EPI x miss penalty (paper Section 3.4)."""
        return self.epi * miss_penalty

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"epochs={self.epoch_count} over {self.instructions} insts "
            f"(EPI/1000={self.epi_per_1000:.3f}, MLP={self.mlp:.2f}, "
            f"storeMLP={self.store_mlp:.2f}, "
            f"overlapped stores={self.fully_overlapped_stores}, "
            f"accelerated={self.accelerated_stores})"
        )
