"""Pluggable execution backends for the epoch MLP simulator.

A :class:`Backend` is a strategy for *executing* a simulation; it never
changes what is simulated.  Every backend consumes the same inputs as
:meth:`repro.core.mlpsim.MlpSimulator.run` — a configuration plus an
annotated trace, with the optional shard/checkpoint hooks — and must
produce a bit-identical :class:`~repro.core.results.SimulationResult`.
The differential suite (``tests/test_backends.py``) enforces that promise
against the ``reference`` oracle for every registered backend.

The lifecycle is three calls::

    state  = backend.prepare(config, trace, ...)   # build simulator state
    events = backend.advance(state)                # one epoch; None when done
    result = backend.finish(state)                 # drain + finalize

``advance`` returns the :class:`~repro.core.epoch.EpochRecord` events the
epoch committed (often an empty list — epochs that overlap no misses leave
no record), and ``None`` once the run has completed; ``finish`` is
idempotent after completion.  :meth:`Backend.simulate` wraps the three
into the familiar one-shot call.

Registered implementations:

``reference``
    The tick loop of :class:`~repro.core.mlpsim.MlpSimulator`, extracted by
    code motion into :class:`EpochDriver`.  The golden oracle; its one-shot
    path delegates straight to ``MlpSimulator.run`` so the measured hot
    loop is byte-for-byte the pre-refactor one.
``event``
    Event-driven epoch scanning (:mod:`repro.core.backends.events`): a
    precomputed next-interesting-position table lets quiescent spans be
    skipped in O(1) instead of iterated.
``batch``
    A numpy struct-of-arrays lockstep kernel
    (:mod:`repro.core.backends.batch`) advancing N independent simulations
    together; requires the optional ``fast`` extra (numpy).

Backend selection threads through every layer (api, CLI ``--backend``,
engine job specs, service protocol).  ``resolve_backend(None)`` honours the
``REPRO_BACKEND`` environment variable before falling back to
``reference``, which is what lets CI run the whole tier-1 suite under each
backend without touching the tests.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from ..config import SimulationConfig
from ..errors import CheckpointCorruptError, ShardBoundaryError, UnknownBackendError
from ..memory.annotate import AnnotatedTrace
from .epoch import EpochRecord
from .mlpsim import MlpSimulator
from .results import SimulationResult
from .scoreboard import RegisterScoreboard
from .snapshot import (
    SNAPSHOT_VERSION,
    SimulatorSnapshot,
    capture_snapshot,
    is_quiescent,
    restore_simulation,
)
from .store_unit import StoreUnit
from .window import EpochAccountant, WindowObserver, WindowState

__all__ = [
    "DEFAULT_BACKEND",
    "Backend",
    "EpochDriver",
    "ReferenceBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
]

#: The backend used when neither the caller nor ``REPRO_BACKEND`` chooses.
DEFAULT_BACKEND = "reference"

#: Environment variable consulted by :func:`resolve_backend` when the
#: caller passes no explicit name — the CI backend matrix sets it.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class EpochDriver:
    """One simulation run, advanced one epoch at a time.

    This is :meth:`MlpSimulator.run` split at its loop boundary by code
    motion: the constructor is the preamble (resume validation, state
    construction, checkpoint-mark arithmetic), :meth:`advance` is one
    iteration of the epoch loop including the cold instrumentation block,
    and :meth:`finish` is the final drain.  The per-epoch work itself still
    runs through the simulator's ``_scan_window``/``_close_epoch``, so a
    subclass of :class:`MlpSimulator` (the event backend) plugs in
    unchanged.
    """

    __slots__ = (
        "simulator",
        "trace",
        "state",
        "accountant",
        "_n",
        "_stop",
        "_checkpoint_every",
        "_checkpoint_sink",
        "_quiescent_log",
        "_instrumented",
        "_next_mark",
        "_attached",
        "_done",
        "_result",
    )

    def __init__(
        self,
        simulator: MlpSimulator,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
        *,
        resume: SimulatorSnapshot | None = None,
        stop: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_sink: Optional[
            Callable[[SimulatorSnapshot], None]
        ] = None,
        quiescent_log: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        core = simulator.core
        n = len(trace)
        stagnation_limit = core.store_queue + core.store_buffer + 8
        attached_observer = (
            observer if observer is not None else simulator.observer
        )
        if resume is not None:
            if resume.version != SNAPSHOT_VERSION:
                raise CheckpointCorruptError(
                    f"snapshot version {resume.version} != "
                    f"{SNAPSHOT_VERSION}"
                )
            if resume.instructions != n:
                raise CheckpointCorruptError(
                    f"snapshot belongs to a {resume.instructions}-instruction "
                    f"trace, got {n} instructions"
                )
            state, accountant = restore_simulation(
                resume, core, stagnation_limit, observer=attached_observer,
            )
        else:
            accountant = EpochAccountant(instructions=n)
            state = WindowState(
                scoreboard=RegisterScoreboard(),
                store_unit=StoreUnit(core),
                stagnation_limit=stagnation_limit,
                observer=attached_observer,
            )
        self.simulator = simulator
        self.trace = trace
        self.state = state
        self.accountant = accountant
        self._n = n
        self._stop = stop
        self._checkpoint_every = checkpoint_every
        self._checkpoint_sink = checkpoint_sink
        self._quiescent_log = quiescent_log
        self._instrumented = (
            stop is not None or quiescent_log is not None
            or (checkpoint_every > 0 and checkpoint_sink is not None)
        )
        self._next_mark = 0
        if checkpoint_every > 0:
            self._next_mark = (
                state.pos // checkpoint_every + 1
            ) * checkpoint_every
        self._attached = state.observer
        self._done = False
        self._result: Optional[SimulationResult] = None

    @property
    def done(self) -> bool:
        return self._done

    def advance(self) -> Optional[List[EpochRecord]]:
        """Run one epoch; return the records it committed, ``None`` if done."""
        if self._done:
            return None
        state = self.state
        accountant = self.accountant
        simulator = self.simulator
        epochs = accountant.result.epochs
        before = len(epochs)

        state.begin_epoch()
        if self._attached is not None:
            self._attached.on_epoch_begin(state)
        simulator._scan_window(self.trace, state, accountant)
        misses = simulator._close_epoch(self.trace, state, accountant)
        state.advance_epoch()
        events = epochs[before:]
        if (
            state.pos >= self._n
            and not state.replay
            and state.store_unit.all_completed(state.cur)
        ):
            self._done = True
            return events
        state.check_progress(misses)
        if self._instrumented:
            pos = state.pos
            stop = self._stop
            if stop is not None and pos >= stop:
                if pos != stop or not is_quiescent(state):
                    raise ShardBoundaryError(
                        f"planned shard boundary {stop} was not reached "
                        f"quiescently (cursor at {pos}); the shard plan "
                        f"does not match this trace/configuration"
                    )
                # The unit is drained at a quiescent boundary, so
                # finalize only copies the accumulated store statistics.
                accountant.result.instructions = stop
                self._result = accountant.finalize(state.store_unit)
                self._done = True
                return events
            if (
                self._quiescent_log is not None
                and 0 < pos < self._n
                and is_quiescent(state)
            ):
                self._quiescent_log.append((pos, state.cur))
            if (
                self._checkpoint_every > 0
                and self._checkpoint_sink is not None
                and pos >= self._next_mark
            ):
                self._checkpoint_sink(
                    capture_snapshot(state, accountant, self._n)
                )
                self._next_mark = (
                    pos // self._checkpoint_every + 1
                ) * self._checkpoint_every
        return events

    def finish(self) -> SimulationResult:
        """Drain outstanding work and return the finalized result."""
        while not self._done:
            self.advance()
        if self._result is None:
            # Final drain: entries whose misses completed in the last epoch
            # are committed here so bandwidth accounting covers every store.
            self.state.store_unit.pump(self.state.cur + 1)
            self._result = self.accountant.finalize(self.state.store_unit)
        return self._result


class Backend(ABC):
    """One execution strategy for the epoch MLP simulation."""

    #: Registry key and wire-protocol spelling.
    name: str = ""

    @abstractmethod
    def prepare(
        self,
        config: SimulationConfig,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
        *,
        resume: SimulatorSnapshot | None = None,
        stop: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_sink: Optional[
            Callable[[SimulatorSnapshot], None]
        ] = None,
        quiescent_log: Optional[List[Tuple[int, int]]] = None,
    ) -> EpochDriver:
        """Build the execution state for one simulation run."""

    def advance(self, state: EpochDriver) -> Optional[List[EpochRecord]]:
        """Advance *state* one epoch; epoch events, or ``None`` when done."""
        return state.advance()

    def finish(self, state: EpochDriver) -> SimulationResult:
        """Finalize *state* into its :class:`SimulationResult`."""
        return state.finish()

    def simulate(
        self,
        config: SimulationConfig,
        trace: AnnotatedTrace,
        observer: WindowObserver | None = None,
        **kwargs,
    ) -> SimulationResult:
        """One-shot convenience: prepare, run to completion, finish."""
        state = self.prepare(config, trace, observer, **kwargs)
        while self.advance(state) is not None:
            pass
        return self.finish(state)


class ReferenceBackend(Backend):
    """The golden oracle: the unmodified tick loop.

    ``simulate`` bypasses the stepwise driver and calls
    :meth:`MlpSimulator.run` directly, keeping the benchmark-gated hot path
    exactly the pre-refactor code; the prepare/advance/finish form drives
    the same scan through :class:`EpochDriver`.
    """

    name = "reference"

    def prepare(self, config, trace, observer=None, **kwargs):
        return EpochDriver(
            MlpSimulator(config), trace, observer, **kwargs,
        )

    def simulate(self, config, trace, observer=None, **kwargs):
        return MlpSimulator(config).run(trace, observer, **kwargs)


_REGISTRY: Dict[str, Backend] = {}
_BUILTINS_LOADED = False


def register_backend(backend: Backend) -> Backend:
    """Register *backend* under its ``name`` (later wins, like a dict)."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported lazily: repro.core.backends imports this module.
    from . import backends  # noqa: F401


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: Optional[str] = None) -> Backend:
    """Resolve *name* (or ``$REPRO_BACKEND``, or the default) to a backend.

    Raises :class:`~repro.errors.UnknownBackendError` for anything not
    registered; availability of optional dependencies is checked at
    ``prepare``/``simulate`` time, not here, so a missing numpy fails the
    run that needs it rather than the name lookup.
    """
    _ensure_builtins()
    chosen = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    try:
        return _REGISTRY[chosen]
    except KeyError:
        raise UnknownBackendError(
            f"unknown execution backend {chosen!r}; "
            f"registered backends: {', '.join(sorted(_REGISTRY))}"
        ) from None


register_backend(ReferenceBackend())
