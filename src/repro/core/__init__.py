"""The epoch MLP model and MLPsim (the paper's primary contribution).

Execution is partitioned into *epochs*: stretches of on-chip computation
followed by a batch of overlapping off-chip accesses.  The simulator
(:mod:`~repro.core.mlpsim`) walks an annotated trace, applies the window
termination conditions implied by the configured microarchitecture and
memory consistency model, and reports Epochs Per Instruction (EPI) and MLP
statistics (:mod:`~repro.core.results`).  EPI translates linearly to
off-chip CPI (:mod:`~repro.core.cpi`).
"""

from .cpi import CpiModel, off_chip_cpi, overall_cpi
from .epoch import EpochRecord, TerminationCondition, TriggerKind
from .mlpsim import MlpSimulator, simulate
from .results import MlpDistribution, SimulationResult
from .scoreboard import RegisterScoreboard
from .store_unit import StoreEntry, StoreUnit
from .window import DeferredLoad, EpochAccountant, WindowObserver, WindowState

__all__ = [
    "CpiModel",
    "DeferredLoad",
    "EpochAccountant",
    "EpochRecord",
    "MlpDistribution",
    "MlpSimulator",
    "RegisterScoreboard",
    "SimulationResult",
    "StoreEntry",
    "StoreUnit",
    "TerminationCondition",
    "TriggerKind",
    "WindowObserver",
    "WindowState",
    "off_chip_cpi",
    "overall_cpi",
    "simulate",
]
