"""Command-line entry point: ``mlpsim`` / ``python -m repro``.

Reproduces any of the paper's tables and figures from the terminal::

    mlpsim table1
    mlpsim figure2 --workloads database tpcw
    mlpsim figure7 --measure 60000
    mlpsim run --workload specjbb --prefetch sp2 --consistency wc

and drives the engine layer for parallel work::

    mlpsim sweep --workload database --axis store_queue=16,32,64 \\
        --axis store_prefetch=sp0,sp1,sp2 --workers 4
    mlpsim figures --names figure2,figure3 --workers 4
    mlpsim bench --smoke

Artifacts (traces, annotations) persist under ``--cache-dir`` (default:
``$REPRO_CACHE_DIR`` or ``.repro-cache``), so a repeated invocation starts
from a warm cache; pass ``--cache-dir none`` to disable persistence.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Sequence, Tuple

from .config import ConsistencyModel, ScoutMode, StorePrefetchMode
from .engine import EngineRunner, JobSpec
from .harness import (
    ExperimentSettings,
    Workbench,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    format_series,
    sweep,
    table1,
    table2,
    table3,
)
from .harness.figures import ALL_WORKLOADS
from .harness.formatting import format_table
from .harness.tables import format_table1, format_table2, format_table3

_PREFETCH = {
    "sp0": StorePrefetchMode.NONE,
    "sp1": StorePrefetchMode.AT_RETIRE,
    "sp2": StorePrefetchMode.AT_EXECUTE,
}
_SCOUT = {mode.value: mode for mode in ScoutMode}
_FIGURES = ("figure2", "figure3", "figure4", "figure5", "figure6",
            "figure7", "figure8")

#: Axis-value parsers for ``mlpsim sweep --axis name=v1,v2``.
_AXIS_ENUMS: Dict[str, Dict[str, Any]] = {
    "store_prefetch": _PREFETCH,
    "scout": _SCOUT,
    "consistency": {"pc": ConsistencyModel.PC, "wc": ConsistencyModel.WC},
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlpsim",
        description=(
            "Epoch MLP model reproduction of 'Store Memory-Level Parallelism "
            "Optimizations for Commercial Applications' (MICRO 2005)"
        ),
    )
    parser.add_argument(
        "--warmup", type=int, default=40_000,
        help="cache/predictor warmup instructions (default 40000)",
    )
    parser.add_argument(
        "--measure", type=int, default=120_000,
        help="measured instructions (default 120000)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload generator seed"
    )
    parser.add_argument(
        "--no-calibrate", action="store_true",
        help="skip Table 1 calibration of the workload profiles",
    )
    parser.add_argument(
        "--workloads", default=",".join(ALL_WORKLOADS),
        help="comma-separated subset of workloads to run "
             f"(default: {','.join(ALL_WORKLOADS)})",
    )
    parser.add_argument(
        "--cache-dir", default="auto",
        help="artifact cache directory; 'auto' (default) uses "
             "$REPRO_CACHE_DIR or .repro-cache, 'none' disables persistence",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "figure2", "figure4",
                 "figure5", "figure6", "figure7", "figure8"):
        sub.add_parser(name, help=f"reproduce {name}")
    report = sub.add_parser(
        "report", help="emit the full paper-vs-measured markdown report"
    )
    report.add_argument(
        "--sections", nargs="*", default=None,
        help="subset of sections (default: all tables and figures)",
    )
    fig3 = sub.add_parser("figure3", help="reproduce figure3")
    fig3.add_argument(
        "--sle", action="store_true",
        help="Figure 3B: SLE + prefetch past serializing",
    )
    run = sub.add_parser("run", help="one simulation with explicit knobs")
    run.add_argument("--workload", default="database", choices=list(ALL_WORKLOADS))
    run.add_argument("--prefetch", default="sp1", choices=sorted(_PREFETCH))
    run.add_argument(
        "--consistency", default="pc", choices=["pc", "wc"],
    )
    run.add_argument("--scout", default="none", choices=sorted(_SCOUT))
    run.add_argument("--sle", action="store_true")
    run.add_argument("--store-buffer", type=int, default=16)
    run.add_argument("--store-queue", type=int, default=32)
    run.add_argument("--perfect-stores", action="store_true")

    sw = sub.add_parser(
        "sweep",
        help="parallel sweep over core-configuration axes via the engine "
             "runner",
    )
    sw.add_argument("--workload", default="database",
                    choices=list(ALL_WORKLOADS))
    sw.add_argument("--variant", default="pc")
    sw.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="one sweep axis, e.g. store_queue=16,32,64 or "
             "store_prefetch=sp0,sp1,sp2 (repeatable)",
    )
    sw.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: min(4, cpus))")
    sw.add_argument("--timeout", type=float, default=600.0,
                    help="per-job timeout in seconds")

    figs = sub.add_parser(
        "figures",
        help="reproduce several figures, pre-warming the artifact cache in "
             "parallel",
    )
    figs.add_argument(
        "--names", default=",".join(_FIGURES),
        help=f"comma-separated figures (default: {','.join(_FIGURES)})",
    )
    figs.add_argument("--workers", type=int, default=None)

    bench_cmd = sub.add_parser(
        "bench", help="engine smoke benchmarks",
    )
    bench_cmd.add_argument(
        "--smoke", action="store_true",
        help="run one tiny parallel sweep end-to-end as a smoke test",
    )
    bench_cmd.add_argument("--workers", type=int, default=2)
    return parser


def _cache_dir(args: argparse.Namespace) -> Any:
    return None if args.cache_dir == "none" else args.cache_dir


def _parse_axis(spec: str) -> Tuple[str, List[Any]]:
    """``store_queue=16,32`` -> ("store_queue", [16, 32])."""
    name, _, raw = spec.partition("=")
    name = name.strip()
    if not name or not raw:
        raise SystemExit(f"bad --axis {spec!r}: expected NAME=V1,V2,...")
    values: List[Any] = []
    mapping = _AXIS_ENUMS.get(name)
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if mapping is not None:
            try:
                values.append(mapping[token.lower()])
                continue
            except KeyError:
                raise SystemExit(
                    f"bad value {token!r} for axis {name}: "
                    f"expected one of {sorted(mapping)}"
                )
        if token.lower() in ("true", "false"):
            values.append(token.lower() == "true")
        else:
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
    if not values:
        raise SystemExit(f"axis {name} has no values")
    return name, values


def _print_nested(results: dict, precision: int = 3) -> None:
    for workload, series in results.items():
        print(f"== {workload} ==")
        if all(isinstance(v, dict) for v in series.values()):
            for key, value in series.items():
                if isinstance(value, dict) and all(
                    isinstance(v, (int, float)) for v in value.values()
                ):
                    print(" ", format_series(str(key), value, precision))
                else:
                    print(f"  {key}: {value}")
        else:
            numeric = {
                k: v for k, v in series.items() if isinstance(v, (int, float))
            }
            print(" ", format_series("EPI/1000", numeric, precision))


def _print_figure3(bench: Workbench, workloads, sle: bool = False) -> None:
    results = figure3(bench, workloads, sle=sle)
    for workload, fractions in results.items():
        print(f"== {workload} ==")
        for cond, fraction in sorted(
            fractions.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {cond.value:32s} {fraction:.3f}")


def _print_figure4(bench: Workbench, workloads) -> None:
    results = figure4(bench, workloads)
    for workload, cells in results.items():
        print(f"== {workload} ==")
        for (store_mlp, load_mlp), fraction in sorted(cells.items()):
            if store_mlp == 0:
                continue
            print(
                f"  storeMLP={store_mlp:2d} load+instMLP={load_mlp:2d} "
                f"fraction={fraction:.4f}"
            )


def _print_figure6(bench: Workbench, workloads) -> None:
    results = figure6(bench, workloads)
    for workload, series in results.items():
        print(f"== {workload} ==")
        for metric, by_nodes in series.items():
            for nodes, by_entries in by_nodes.items():
                print(
                    " ",
                    format_series(f"{metric}/{nodes}-node", by_entries),
                )


def _print_with_perfect(results: dict) -> None:
    for workload, series in results.items():
        print(f"== {workload} ==")
        for key, pair in series.items():
            print(
                f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                f"perfect={pair['perfect']:.3f}"
            )


def _render_figure(name: str, bench: Workbench, workloads,
                   sle: bool = False) -> None:
    if name == "figure2":
        _print_nested(figure2(bench, workloads))
    elif name == "figure3":
        _print_figure3(bench, workloads, sle=sle)
    elif name == "figure4":
        _print_figure4(bench, workloads)
    elif name == "figure5":
        _print_nested(figure5(bench, workloads))
    elif name == "figure6":
        _print_figure6(bench, workloads)
    elif name == "figure7":
        _print_with_perfect(figure7(bench, workloads))
    elif name == "figure8":
        _print_with_perfect(figure8(bench, workloads))
    else:
        raise SystemExit(f"unknown figure {name!r}")


def _cmd_sweep(args, settings: ExperimentSettings, workloads) -> int:
    axes = dict(_parse_axis(spec) for spec in args.axis)
    if not axes:
        print("sweep needs at least one --axis", file=sys.stderr)
        return 2
    runner = EngineRunner(
        settings=settings,
        cache_dir=_cache_dir(args),
        workers=args.workers,
        job_timeout=args.timeout,
    )
    bench = Workbench(settings, cache_dir=_cache_dir(args))
    records = sweep(
        bench, args.workload, args.variant, runner=runner, **axes,
    )
    rows = [
        [record.label(), record.epi_per_1000, record.mlp,
         record.store_mlp, record.store_bandwidth_overhead]
        for record in records
    ]
    print(format_table(
        ["point", "EPI/1000", "MLP", "storeMLP", "bw overhead"],
        rows,
        title=f"{args.workload}/{args.variant} sweep",
    ))
    best = min(records, key=lambda r: r.epi_per_1000)
    print(f"best point: {best.label()} (EPI/1000={best.epi_per_1000:.3f})")
    return 0


def _cmd_figures(args, settings: ExperimentSettings, workloads) -> int:
    names = [n.strip() for n in args.names.split(",") if n.strip()]
    unknown = set(names) - set(_FIGURES)
    if unknown:
        print(f"unknown figures: {sorted(unknown)}", file=sys.stderr)
        return 2
    cache_dir = _cache_dir(args)
    # Warm phase: fan annotation jobs out across workers; the figure
    # drivers then run serially against a warm (persistent) cache.
    variants = ["pc"]
    if any(name in ("figure7", "figure8") for name in names):
        variants.append("wc")
    runner = EngineRunner(
        settings=settings, cache_dir=cache_dir, workers=args.workers,
    )
    warm_jobs = [
        JobSpec(workload=workload, variant=variant, action="annotate")
        for workload in workloads for variant in variants
    ]
    if cache_dir is not None:
        report = runner.run(warm_jobs)
        print(f"# warm: {report.summary()}", file=sys.stderr)
    bench = Workbench(settings, cache_dir=cache_dir)
    for name in names:
        print(f"# {name}")
        _render_figure(name, bench, workloads)
    return 0


def _cmd_bench_smoke(args, settings: ExperimentSettings) -> int:
    """A tiny end-to-end parallel sweep: pipeline + cache + pool."""
    smoke_settings = ExperimentSettings(
        warmup=min(settings.warmup, 3000),
        measure=min(settings.measure, 9000),
        seed=settings.seed,
        calibrate=False,
    )
    runner = EngineRunner(
        settings=smoke_settings,
        cache_dir=_cache_dir(args),
        workers=args.workers,
        job_timeout=300.0,
    )
    jobs = [
        JobSpec(
            workload="database",
            core_changes=(
                ("store_prefetch", prefetch), ("store_queue", queue),
            ),
        )
        for prefetch in (StorePrefetchMode.NONE, StorePrefetchMode.AT_RETIRE)
        for queue in (16, 32)
    ]
    report = runner.run(jobs)
    print(report.summary())
    for job in report.jobs:
        line = f"  {job.spec.describe():48s} [{job.status}]"
        if job.ok:
            line += f" EPI/1000={job.result.epi_per_1000:.3f}"
        else:
            line += f" {job.error}"
        print(line)
    if report.failed:
        return 1
    print("smoke ok")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    settings = ExperimentSettings(
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
        calibrate=not args.no_calibrate,
    )
    workloads = tuple(
        name.strip() for name in args.workloads.split(",") if name.strip()
    )
    unknown = set(workloads) - set(ALL_WORKLOADS)
    if unknown:
        print(f"unknown workloads: {sorted(unknown)}", file=sys.stderr)
        return 2

    if args.command == "sweep":
        return _cmd_sweep(args, settings, workloads)
    if args.command == "figures":
        return _cmd_figures(args, settings, workloads)
    if args.command == "bench":
        if not args.smoke:
            print("bench requires --smoke", file=sys.stderr)
            return 2
        return _cmd_bench_smoke(args, settings)

    bench = Workbench(settings, cache_dir=_cache_dir(args))
    if args.command == "table1":
        print(format_table1(table1(bench, workloads)))
    elif args.command == "table2":
        print(format_table2(table2(bench, workloads)))
    elif args.command == "table3":
        print(format_table3(table3(bench, workloads)))
    elif args.command == "figure3":
        _render_figure("figure3", bench, workloads, sle=args.sle)
    elif args.command in _FIGURES:
        _render_figure(args.command, bench, workloads)
    elif args.command == "report":
        from .harness.report import ALL_SECTIONS, generate_report
        sections = args.sections or list(ALL_SECTIONS)
        sys.stdout.write(generate_report(bench, sections))
    elif args.command == "run":
        result = bench.run(
            args.workload,
            variant=("wc" if args.consistency == "wc" else "pc")
            + ("_sle" if args.sle else ""),
            store_prefetch=_PREFETCH[args.prefetch],
            consistency=(
                ConsistencyModel.WC if args.consistency == "wc"
                else ConsistencyModel.PC
            ),
            scout=_SCOUT[args.scout],
            store_buffer=args.store_buffer,
            store_queue=args.store_queue,
            perfect_stores=args.perfect_stores,
        )
        print(result.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
