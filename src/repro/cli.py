"""Command-line entry point: ``mlpsim`` / ``python -m repro``.

Reproduces any of the paper's tables and figures from the terminal::

    mlpsim table1
    mlpsim figure2 --workloads database tpcw
    mlpsim figure7 --measure 60000
    mlpsim run --workload specjbb --prefetch sp2 --consistency wc
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .config import ConsistencyModel, ScoutMode, StorePrefetchMode
from .harness import (
    ExperimentSettings,
    Workbench,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    format_series,
    table1,
    table2,
    table3,
)
from .harness.figures import ALL_WORKLOADS
from .harness.tables import format_table1, format_table2, format_table3

_PREFETCH = {
    "sp0": StorePrefetchMode.NONE,
    "sp1": StorePrefetchMode.AT_RETIRE,
    "sp2": StorePrefetchMode.AT_EXECUTE,
}
_SCOUT = {mode.value: mode for mode in ScoutMode}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlpsim",
        description=(
            "Epoch MLP model reproduction of 'Store Memory-Level Parallelism "
            "Optimizations for Commercial Applications' (MICRO 2005)"
        ),
    )
    parser.add_argument(
        "--warmup", type=int, default=40_000,
        help="cache/predictor warmup instructions (default 40000)",
    )
    parser.add_argument(
        "--measure", type=int, default=120_000,
        help="measured instructions (default 120000)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload generator seed"
    )
    parser.add_argument(
        "--no-calibrate", action="store_true",
        help="skip Table 1 calibration of the workload profiles",
    )
    parser.add_argument(
        "--workloads", default=",".join(ALL_WORKLOADS),
        help="comma-separated subset of workloads to run "
             f"(default: {','.join(ALL_WORKLOADS)})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "figure2", "figure4",
                 "figure5", "figure6", "figure7", "figure8"):
        sub.add_parser(name, help=f"reproduce {name}")
    report = sub.add_parser(
        "report", help="emit the full paper-vs-measured markdown report"
    )
    report.add_argument(
        "--sections", nargs="*", default=None,
        help="subset of sections (default: all tables and figures)",
    )
    fig3 = sub.add_parser("figure3", help="reproduce figure3")
    fig3.add_argument(
        "--sle", action="store_true",
        help="Figure 3B: SLE + prefetch past serializing",
    )
    run = sub.add_parser("run", help="one simulation with explicit knobs")
    run.add_argument("--workload", default="database", choices=list(ALL_WORKLOADS))
    run.add_argument("--prefetch", default="sp1", choices=sorted(_PREFETCH))
    run.add_argument(
        "--consistency", default="pc", choices=["pc", "wc"],
    )
    run.add_argument("--scout", default="none", choices=sorted(_SCOUT))
    run.add_argument("--sle", action="store_true")
    run.add_argument("--store-buffer", type=int, default=16)
    run.add_argument("--store-queue", type=int, default=32)
    run.add_argument("--perfect-stores", action="store_true")
    return parser


def _print_nested(results: dict, precision: int = 3) -> None:
    for workload, series in results.items():
        print(f"== {workload} ==")
        if all(isinstance(v, dict) for v in series.values()):
            for key, value in series.items():
                if isinstance(value, dict) and all(
                    isinstance(v, (int, float)) for v in value.values()
                ):
                    print(" ", format_series(str(key), value, precision))
                else:
                    print(f"  {key}: {value}")
        else:
            numeric = {
                k: v for k, v in series.items() if isinstance(v, (int, float))
            }
            print(" ", format_series("EPI/1000", numeric, precision))


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    settings = ExperimentSettings(
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
        calibrate=not args.no_calibrate,
    )
    bench = Workbench(settings)
    workloads = tuple(
        name.strip() for name in args.workloads.split(",") if name.strip()
    )
    unknown = set(workloads) - set(ALL_WORKLOADS)
    if unknown:
        print(f"unknown workloads: {sorted(unknown)}", file=sys.stderr)
        return 2

    if args.command == "table1":
        print(format_table1(table1(bench, workloads)))
    elif args.command == "table2":
        print(format_table2(table2(bench, workloads)))
    elif args.command == "table3":
        print(format_table3(table3(bench, workloads)))
    elif args.command == "figure2":
        _print_nested(figure2(bench, workloads))
    elif args.command == "figure3":
        results = figure3(bench, workloads, sle=args.sle)
        for workload, fractions in results.items():
            print(f"== {workload} ==")
            for cond, fraction in sorted(
                fractions.items(), key=lambda kv: -kv[1]
            ):
                print(f"  {cond.value:32s} {fraction:.3f}")
    elif args.command == "figure4":
        results = figure4(bench, workloads)
        for workload, cells in results.items():
            print(f"== {workload} ==")
            for (store_mlp, load_mlp), fraction in sorted(cells.items()):
                if store_mlp == 0:
                    continue
                print(
                    f"  storeMLP={store_mlp:2d} load+instMLP={load_mlp:2d} "
                    f"fraction={fraction:.4f}"
                )
    elif args.command == "figure5":
        _print_nested(figure5(bench, workloads))
    elif args.command == "figure6":
        results = figure6(bench, workloads)
        for workload, series in results.items():
            print(f"== {workload} ==")
            for metric, by_nodes in series.items():
                for nodes, by_entries in by_nodes.items():
                    print(
                        " ",
                        format_series(
                            f"{metric}/{nodes}-node", by_entries
                        ),
                    )
    elif args.command == "figure7":
        results = figure7(bench, workloads)
        for workload, series in results.items():
            print(f"== {workload} ==")
            for key, pair in series.items():
                print(
                    f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                    f"perfect={pair['perfect']:.3f}"
                )
    elif args.command == "figure8":
        results = figure8(bench, workloads)
        for workload, series in results.items():
            print(f"== {workload} ==")
            for key, pair in series.items():
                print(
                    f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                    f"perfect={pair['perfect']:.3f}"
                )
    elif args.command == "report":
        from .harness.report import ALL_SECTIONS, generate_report
        sections = args.sections or list(ALL_SECTIONS)
        sys.stdout.write(generate_report(bench, sections))
    elif args.command == "run":
        result = bench.run(
            args.workload,
            variant=("wc" if args.consistency == "wc" else "pc")
            + ("_sle" if args.sle else ""),
            store_prefetch=_PREFETCH[args.prefetch],
            consistency=(
                ConsistencyModel.WC if args.consistency == "wc"
                else ConsistencyModel.PC
            ),
            scout=_SCOUT[args.scout],
            store_buffer=args.store_buffer,
            store_queue=args.store_queue,
            perfect_stores=args.perfect_stores,
        )
        print(result.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
