"""Command-line entry point: ``mlpsim`` / ``python -m repro``.

Reproduces any of the paper's tables and figures from the terminal::

    mlpsim table1
    mlpsim figure2 --workloads database tpcw
    mlpsim figure7 --measure 60000
    mlpsim run --workload specjbb --prefetch sp2 --consistency wc

and drives the engine layer for parallel work::

    mlpsim sweep --workload database --axis store_queue=16,32,64 \\
        --axis store_prefetch=sp0,sp1,sp2 --workers 4
    mlpsim figures --names figure2,figure3 --workers 4
    mlpsim bench --smoke
    mlpsim bench --perf --out BENCH_core.json --baseline BENCH_core.json

Commands are thin wrappers over :mod:`repro.api` (the documented library
facade) — anything the CLI does is a few lines of ``api.run`` /
``api.sweep`` / ``api.connect`` away in a script.

or runs as / talks to a long-lived simulation service::

    mlpsim serve --port 8137 --workers 4
    mlpsim submit --url http://127.0.0.1:8137 --workload database \\
        --axis store_prefetch=sp0,sp1,sp2
    mlpsim status JOB_ID --url http://127.0.0.1:8137

Artifacts (traces, annotations) persist under ``--cache-dir`` (default:
``$REPRO_CACHE_DIR`` or ``.repro-cache``), so a repeated invocation starts
from a warm cache; pass ``--cache-dir none`` to disable persistence.
Inspect or bound that store with ``mlpsim cache stats`` and
``mlpsim cache prune --max-bytes 500M --older-than 7d``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Sequence, Tuple

from . import api
from .api import (  # the documented facade re-exports the working types
    EngineRunner,
    ExperimentSettings,
    JobSpec,
    SweepSpec,
    Workbench,
)
from .config import ConsistencyModel, ScoutMode, StorePrefetchMode
from .core.backend import backend_names
from .harness import (
    coerce_axis_value,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    format_series,
    table1,
    table2,
    table3,
)
from .harness.figures import ALL_WORKLOADS
from .tune import STRATEGIES
from .harness.formatting import format_table
from .harness.tables import format_table1, format_table2, format_table3

_PREFETCH = {
    "sp0": StorePrefetchMode.NONE,
    "sp1": StorePrefetchMode.AT_RETIRE,
    "sp2": StorePrefetchMode.AT_EXECUTE,
}
_SCOUT = {mode.value: mode for mode in ScoutMode}
_FIGURES = ("figure2", "figure3", "figure4", "figure5", "figure6",
            "figure7", "figure8")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlpsim",
        description=(
            "Epoch MLP model reproduction of 'Store Memory-Level Parallelism "
            "Optimizations for Commercial Applications' (MICRO 2005)"
        ),
    )
    parser.add_argument(
        "--warmup", type=int, default=40_000,
        help="cache/predictor warmup instructions (default 40000)",
    )
    parser.add_argument(
        "--measure", type=int, default=120_000,
        help="measured instructions (default 120000)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload generator seed"
    )
    parser.add_argument(
        "--no-calibrate", action="store_true",
        help="skip Table 1 calibration of the workload profiles",
    )
    parser.add_argument(
        "--workloads", default=",".join(ALL_WORKLOADS),
        help="comma-separated subset of workloads to run "
             f"(default: {','.join(ALL_WORKLOADS)})",
    )
    parser.add_argument(
        "--cache-dir", default="auto",
        help="artifact cache directory; 'auto' (default) uses "
             "$REPRO_CACHE_DIR or .repro-cache, 'none' disables persistence",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "figure2", "figure4",
                 "figure5", "figure6", "figure7", "figure8"):
        sub.add_parser(name, help=f"reproduce {name}")
    report = sub.add_parser(
        "report", help="emit the full paper-vs-measured markdown report"
    )
    report.add_argument(
        "--sections", nargs="*", default=None,
        help="subset of sections (default: all tables and figures)",
    )
    fig3 = sub.add_parser("figure3", help="reproduce figure3")
    fig3.add_argument(
        "--sle", action="store_true",
        help="Figure 3B: SLE + prefetch past serializing",
    )
    run = sub.add_parser("run", help="one simulation with explicit knobs")
    run.add_argument(
        "--workload", default="database",
        help="workload profile; with --contexts > 1 also a '+'-joined "
             "mix (database+specjbb) or a named mix (oltp_java, "
             "web_tier, commercial)",
    )
    run.add_argument(
        "--contexts", type=int, default=1, metavar="N",
        help="SMT hardware contexts (default 1 = the single-context "
             "pipeline, bit-identical to the reference backend)",
    )
    run.add_argument(
        "--scheduler", default="",
        help="SMT thread-scheduling policy for --contexts > 1 "
             "(round_robin, icount, mlp; default round_robin)",
    )
    run.add_argument("--prefetch", default="sp1", choices=sorted(_PREFETCH))
    run.add_argument(
        "--consistency", default="pc", choices=["pc", "wc"],
    )
    run.add_argument("--scout", default="none", choices=sorted(_SCOUT))
    run.add_argument("--sle", action="store_true")
    run.add_argument("--store-buffer", type=int, default=16)
    run.add_argument("--store-queue", type=int, default=32)
    run.add_argument("--perfect-stores", action="store_true")
    run.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write a JSONL epoch trace into this directory "
             "(render with 'mlpsim trace DIR')",
    )
    run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="segment the trace at quiescent epoch boundaries and run the "
             "shards in parallel (result is bit-identical to unsharded)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="snapshot simulation state every K instructions so an "
             "interrupted run resumes via 'mlpsim resume TOKEN'",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for a sharded run (default: min(4, cpus))",
    )
    run.add_argument(
        "--backend", default=None, choices=list(backend_names()),
        help="execution backend (default: $REPRO_BACKEND or 'reference'); "
             "all backends return bit-identical results",
    )

    est = sub.add_parser(
        "estimate",
        help="analytical EPI prediction for a job spec — no trace read, "
             "no simulation run (sub-millisecond)",
    )
    est.add_argument(
        "--workload", default="database",
        help="workload profile, '+'-joined mix or named mix",
    )
    est.add_argument("--variant", default="pc")
    est.add_argument(
        "--contexts", type=int, default=1, metavar="N",
        help="SMT hardware contexts (mix components are averaged)",
    )
    est.add_argument(
        "--knob", action="append", default=[], metavar="NAME=VALUE",
        help="one core-config knob, e.g. scout=hws2 or store_queue=64 "
             "(repeatable; same names as the sweep axes)",
    )
    est.add_argument(
        "--json", action="store_true",
        help="print the full estimate as JSON instead of the summary line",
    )

    rs = sub.add_parser(
        "resume",
        help="resume a checkpointed simulation from its resume token",
    )
    rs.add_argument(
        "token",
        help="resume token printed by 'mlpsim run --checkpoint-every K' "
             "(the checkpoint's artifact-cache key)",
    )
    rs.add_argument("--workers", type=int, default=None)

    sw = sub.add_parser(
        "sweep",
        help="parallel sweep over core-configuration axes via the engine "
             "runner",
    )
    sw.add_argument("--workload", default="database",
                    choices=list(ALL_WORKLOADS))
    sw.add_argument("--variant", default="pc")
    sw.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="one sweep axis, e.g. store_queue=16,32,64 or "
             "store_prefetch=sp0,sp1,sp2 (repeatable)",
    )
    sw.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: min(4, cpus))")
    sw.add_argument("--timeout", type=float, default=600.0,
                    help="per-job timeout in seconds")
    sw.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="every worker writes a JSONL trace file into this directory",
    )
    sw.add_argument(
        "--backend", default=None, choices=list(backend_names()),
        help="execution backend for every grid point; 'batch' runs the "
             "whole grid as one in-process numpy lockstep batch",
    )

    tn = sub.add_parser(
        "tune",
        help="search the design space for the lowest-EPI configuration "
             "(grid / random / genetic, with analytical pruning)",
    )
    tn.add_argument(
        "--workload", default="database",
        help="workload profile; with --contexts > 1 also a '+'-joined "
             "or named mix",
    )
    tn.add_argument("--variant", default="pc")
    tn.add_argument(
        "--param", action="append", default=[], metavar="NAME=V1,V2",
        help="one search dimension, e.g. store_queue=16,32,64 "
             "(repeatable; same axes as 'mlpsim sweep')",
    )
    tn.add_argument(
        "--contexts", type=int, default=1, metavar="N",
        help="evaluate every candidate as an N-context SMT run "
             "(aggregate EPI is the optimized metric)",
    )
    tn.add_argument(
        "--scheduler", default="",
        help="SMT scheduling policy for --contexts > 1",
    )
    tn.add_argument(
        "--strategy", default="genetic", choices=list(STRATEGIES),
    )
    tn.add_argument(
        "--budget", type=int, default=16,
        help="max measured evaluations (cached/pruned/resumed candidates "
             "are free)",
    )
    tn.add_argument(
        "--search-seed", type=int, default=0,
        help="strategy RNG seed (distinct from --seed, the workload "
             "generator seed)",
    )
    tn.add_argument(
        "--margin", type=float, default=0.30,
        help="prune candidates predicted this fraction worse than the "
             "incumbent (default 0.30)",
    )
    tn.add_argument(
        "--no-resume", action="store_true",
        help="ignore persisted tuning state (state is still rewritten)",
    )
    tn.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: min(4, cpus))")
    tn.add_argument(
        "--backend", default=None, choices=list(backend_names()),
        help="execution backend for every evaluation",
    )
    tn.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write JSONL tune_generation spans into this directory",
    )
    tn.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the winning configuration as JSON "
             "(the benchmarks/best_configs.json shape)",
    )

    figs = sub.add_parser(
        "figures",
        help="reproduce several figures, pre-warming the artifact cache in "
             "parallel",
    )
    figs.add_argument(
        "--names", default=",".join(_FIGURES),
        help=f"comma-separated figures (default: {','.join(_FIGURES)})",
    )
    figs.add_argument("--workers", type=int, default=None)

    bench_cmd = sub.add_parser(
        "bench", help="engine smoke test or core-loop perf benchmark",
    )
    bench_cmd.add_argument(
        "--smoke", action="store_true",
        help="run one tiny parallel sweep end-to-end as a smoke test",
    )
    bench_cmd.add_argument("--workers", type=int, default=2)
    bench_cmd.add_argument(
        "--perf", action="store_true",
        help="measure the core simulation loop (instructions/sec per "
             "profile, median of --reps)",
    )
    bench_cmd.add_argument(
        "--reps", type=int, default=5,
        help="timed repetitions per perf profile (default 5)",
    )
    bench_cmd.add_argument(
        "--warmup-reps", type=int, default=2,
        help="untimed repetitions before measuring (default 2)",
    )
    bench_cmd.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the perf report as JSON (e.g. BENCH_core.json)",
    )
    bench_cmd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="regression-gate against this committed perf report",
    )
    bench_cmd.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed insts/sec drop vs --baseline before failing "
             "(default 0.20)",
    )
    bench_cmd.add_argument(
        "--backend", default=None,
        choices=list(backend_names()) + ["all"],
        help="perf-bench one execution backend, or 'all' for the full "
             "backend comparison report (BENCH_backends.json)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the simulation service daemon (JSON HTTP API)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8137,
                     help="listen port (0 binds an ephemeral port)")
    srv.add_argument("--workers", type=int, default=None,
                     help="engine worker processes (default: min(4, cpus))")
    srv.add_argument("--queue-capacity", type=int, default=256,
                     help="max queued (pending) jobs before 429")
    srv.add_argument("--job-timeout", type=float, default=600.0,
                     help="per-simulation timeout in seconds")
    srv.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error", "critical"],
        help="daemon log level (default info)",
    )
    srv.add_argument(
        "--log-format", default="text", choices=["text", "json"],
        help="log records as human-readable text or JSON lines",
    )
    srv.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace every job's engine batches and epochs as JSONL here",
    )
    srv.add_argument(
        "--trace-max-bytes", type=int, default=0, metavar="BYTES",
        help="rotate trace files at this size (trace-<pid>.jsonl -> .1, "
             ".2, ...; 0 disables rotation)",
    )
    srv.add_argument(
        "--fleet", action="store_true",
        help="run as a fleet coordinator (async front end + pull-based "
             "workers joined with 'mlpsim worker --join URL') instead of "
             "executing jobs in-process",
    )
    srv.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds SIGTERM waits for in-flight work before abandoning "
             "it (exit status is nonzero when work was abandoned)",
    )
    srv.add_argument(
        "--lease-ttl", type=float, default=5.0,
        help="fleet worker heartbeat lease TTL in seconds",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=2,
        help="fleet: max tasks leased per worker at once (backpressure "
             "bound)",
    )
    srv.add_argument(
        "--lease-batch", type=int, default=4,
        help="fleet: tasks offered per lease long-poll",
    )
    srv.add_argument(
        "--default-backend", default="",
        choices=["", *backend_names()],
        help="fleet: backend stamped on jobs that did not pick one",
    )

    wk = sub.add_parser(
        "worker",
        help="join a fleet coordinator and execute leased tasks",
    )
    wk.add_argument(
        "--join", required=True, metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8137",
    )
    wk.add_argument("--name", default="", help="worker name for the fleet "
                    "status table (default: worker-<pid>)")
    wk.add_argument(
        "--runner-workers", type=int, default=1,
        help="engine worker processes inside this fleet worker (default 1)",
    )
    wk.add_argument(
        "--lease-batch", type=int, default=0,
        help="max tasks pulled per lease (default: the coordinator's hint)",
    )
    wk.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error", "critical"],
    )
    wk.add_argument(
        "--log-format", default="text", choices=["text", "json"],
    )
    wk.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace leased batches as JSONL into this directory",
    )
    wk.add_argument(
        "--trace-max-bytes", type=int, default=0, metavar="BYTES",
        help="rotate trace files at this size (0 disables rotation)",
    )

    fl = sub.add_parser(
        "fleet", help="inspect or control a running fleet coordinator",
    )
    fl_sub = fl.add_subparsers(dest="fleet_command", required=True)
    fl_status = fl_sub.add_parser(
        "status", help="worker and task table of a coordinator",
    )
    fl_status.add_argument("--url", default="http://127.0.0.1:8137")
    fl_status.add_argument("--json", action="store_true",
                           help="print the raw JSON payload")
    fl_drain = fl_sub.add_parser(
        "drain", help="flag one worker (or the whole fleet) to drain",
    )
    fl_drain.add_argument("--url", default="http://127.0.0.1:8137")
    fl_drain.add_argument("--worker", default="",
                          help="worker id (empty drains the whole fleet)")
    fl_top = fl_sub.add_parser(
        "top",
        help="live console view of a coordinator: per-worker federated "
             "metrics, lease ages and queue state, polled from /metrics",
    )
    fl_top.add_argument("--url", default="http://127.0.0.1:8137")
    fl_top.add_argument("--interval", type=float, default=2.0,
                        help="seconds between refreshes")
    fl_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (0 = run until interrupted)",
    )

    sb = sub.add_parser(
        "submit", help="submit a sweep to a running service and wait",
    )
    sb.add_argument("--url", default="http://127.0.0.1:8137",
                    help="service base URL")
    sb.add_argument("--workload", default="database",
                    choices=list(ALL_WORKLOADS))
    sb.add_argument("--variant", default="pc")
    sb.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="one sweep axis (repeatable), e.g. store_queue=16,32",
    )
    sb.add_argument("--priority", type=int, default=0)
    sb.add_argument(
        "--backend", default="", choices=["", *backend_names()],
        help="execution backend the service should run the sweep on",
    )
    sb.add_argument("--no-wait", action="store_true",
                    help="print the job id and return without polling")
    sb.add_argument("--poll-timeout", type=float, default=600.0,
                    help="seconds to wait for completion")

    st = sub.add_parser("status", help="query one job on a running service")
    st.add_argument("job_id")
    st.add_argument("--url", default="http://127.0.0.1:8137")

    cache_cmd = sub.add_parser(
        "cache", help="inspect or prune the persistent artifact cache",
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry count and bytes by kind")
    prune = cache_sub.add_parser(
        "prune", help="evict persistent artifacts, oldest first",
    )
    prune.add_argument(
        "--max-bytes", default=None, metavar="BYTES",
        help="shrink the store to at most this size (suffixes K/M/G)",
    )
    prune.add_argument(
        "--older-than", default=None, metavar="AGE",
        help="drop entries older than this (suffixes s/m/h/d, default s)",
    )

    tr = sub.add_parser(
        "trace",
        help="render the per-epoch timeline of a JSONL trace run",
    )
    tr.add_argument(
        "path", help="trace file, or directory of trace-<pid>.jsonl files",
    )
    tr.add_argument(
        "--limit", type=int, default=40,
        help="max epoch rows before eliding the middle (0 = no limit)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability tooling over JSONL traces",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="event counts, termination breakdown and span table of a trace",
    )
    obs_report.add_argument(
        "path", help="trace file, or directory of trace-<pid>.jsonl files",
    )
    obs_report.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="render for humans (text) or machines (json digest)",
    )
    obs_critical = obs_sub.add_parser(
        "critical-path",
        help="per-phase latency decomposition and critical path of a "
             "fleet job's merged cross-process trace",
    )
    obs_critical.add_argument(
        "job_id",
        help="fleet job id (its correlation id), or 'all' for every fleet "
             "job in the trace",
    )
    obs_critical.add_argument(
        "--trace-dir", required=True, metavar="PATH", dest="trace_path",
        help="trace file or directory holding the coordinator's (and "
             "optionally the workers') trace-<pid>.jsonl files",
    )
    obs_critical.add_argument(
        "--json", action="store_true",
        help="print the timeline as JSON instead of the console rendering",
    )
    return parser


def _cache_dir(args: argparse.Namespace) -> Any:
    return None if args.cache_dir == "none" else args.cache_dir


def _parse_axis(spec: str, flag: str = "--axis") -> Tuple[str, List[Any]]:
    """``store_queue=16,32`` -> ("store_queue", [16, 32])."""
    name, _, raw = spec.partition("=")
    name = name.strip()
    if not name or not raw:
        raise SystemExit(f"bad {flag} {spec!r}: expected NAME=V1,V2,...")
    try:
        values = [
            coerce_axis_value(name, token.strip())
            for token in raw.split(",") if token.strip()
        ]
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not values:
        raise SystemExit(f"axis {name} has no values")
    return name, values


def _parse_axes(specs: Sequence[str], flag: str) -> Dict[str, List[Any]]:
    """Parse repeated ``NAME=V1,V2`` options, rejecting duplicate names.

    A repeated knob name used to silently keep the last spelling; now it
    is an explicit error so ``--param store_queue=16 --param
    store_queue=32`` cannot masquerade as a two-value dimension.
    """
    axes: Dict[str, List[Any]] = {}
    for spec in specs:
        name, values = _parse_axis(spec, flag)
        if name in axes:
            raise SystemExit(
                f"duplicate {flag} name {name!r}: merge the values into "
                f"one option ({flag} {name}=V1,V2,...)"
            )
        axes[name] = values
    return axes


_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_size(text: str) -> int:
    """``"500M"`` -> bytes."""
    value = text.strip().lower()
    scale = _SIZE_SUFFIXES.get(value[-1:], None)
    if scale is not None:
        value = value[:-1]
    try:
        return int(float(value) * (scale or 1))
    except ValueError:
        raise SystemExit(f"bad size {text!r}: expected e.g. 1000000 or 500M")


def _parse_age(text: str) -> float:
    """``"7d"`` -> seconds."""
    value = text.strip().lower()
    scale = _AGE_SUFFIXES.get(value[-1:], None)
    if scale is not None:
        value = value[:-1]
    try:
        return float(value) * (scale or 1.0)
    except ValueError:
        raise SystemExit(f"bad age {text!r}: expected e.g. 3600 or 7d")


def _print_nested(results: dict, precision: int = 3) -> None:
    for workload, series in results.items():
        print(f"== {workload} ==")
        if all(isinstance(v, dict) for v in series.values()):
            for key, value in series.items():
                if isinstance(value, dict) and all(
                    isinstance(v, (int, float)) for v in value.values()
                ):
                    print(" ", format_series(str(key), value, precision))
                else:
                    print(f"  {key}: {value}")
        else:
            numeric = {
                k: v for k, v in series.items() if isinstance(v, (int, float))
            }
            print(" ", format_series("EPI/1000", numeric, precision))


def _print_figure3(bench: Workbench, workloads, sle: bool = False) -> None:
    results = figure3(bench, workloads, sle=sle)
    for workload, fractions in results.items():
        print(f"== {workload} ==")
        for cond, fraction in sorted(
            fractions.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {cond.value:32s} {fraction:.3f}")


def _print_figure4(bench: Workbench, workloads) -> None:
    results = figure4(bench, workloads)
    for workload, cells in results.items():
        print(f"== {workload} ==")
        for (store_mlp, load_mlp), fraction in sorted(cells.items()):
            if store_mlp == 0:
                continue
            print(
                f"  storeMLP={store_mlp:2d} load+instMLP={load_mlp:2d} "
                f"fraction={fraction:.4f}"
            )


def _print_figure6(bench: Workbench, workloads) -> None:
    results = figure6(bench, workloads)
    for workload, series in results.items():
        print(f"== {workload} ==")
        for metric, by_nodes in series.items():
            for nodes, by_entries in by_nodes.items():
                print(
                    " ",
                    format_series(f"{metric}/{nodes}-node", by_entries),
                )


def _print_with_perfect(results: dict) -> None:
    for workload, series in results.items():
        print(f"== {workload} ==")
        for key, pair in series.items():
            print(
                f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                f"perfect={pair['perfect']:.3f}"
            )


def _render_figure(name: str, bench: Workbench, workloads,
                   sle: bool = False) -> None:
    if name == "figure2":
        _print_nested(figure2(bench, workloads))
    elif name == "figure3":
        _print_figure3(bench, workloads, sle=sle)
    elif name == "figure4":
        _print_figure4(bench, workloads)
    elif name == "figure5":
        _print_nested(figure5(bench, workloads))
    elif name == "figure6":
        _print_figure6(bench, workloads)
    elif name == "figure7":
        _print_with_perfect(figure7(bench, workloads))
    elif name == "figure8":
        _print_with_perfect(figure8(bench, workloads))
    else:
        raise SystemExit(f"unknown figure {name!r}")


def _cmd_sweep(args, settings: ExperimentSettings, workloads) -> int:
    axes = _parse_axes(args.axis, "--axis")
    if not axes:
        print("sweep needs at least one --axis", file=sys.stderr)
        return 2
    try:
        spec = SweepSpec.build(args.workload, args.variant, **axes)
    except ValueError as exc:
        raise SystemExit(str(exc))
    records = api.sweep(
        spec,
        settings=settings,
        cache_dir=_cache_dir(args),
        workers=args.workers,
        job_timeout=args.timeout,
        trace=args.trace_dir,
        backend=args.backend,
    )
    rows = [
        [record.label(), record.epi_per_1000, record.mlp,
         record.store_mlp, record.store_bandwidth_overhead]
        for record in records
    ]
    print(format_table(
        ["point", "EPI/1000", "MLP", "storeMLP", "bw overhead"],
        rows,
        title=f"{args.workload}/{args.variant} sweep",
    ))
    best = min(records, key=lambda r: r.epi_per_1000)
    print(f"best point: {best.label()} (EPI/1000={best.epi_per_1000:.3f})")
    return 0


def _best_config_payload(result) -> Dict[str, Any]:
    """The JSON shape committed under benchmarks/best_configs.json."""
    return {
        "workload": result.spec.workload,
        "variant": result.spec.variant,
        "strategy": result.spec.strategy,
        "budget": result.spec.budget,
        "seed": result.spec.seed,
        "settings": {
            "warmup": result.settings.warmup,
            "measure": result.settings.measure,
            "seed": result.settings.seed,
            "calibrate": result.settings.calibrate,
        },
        "space": result.spec.space.describe(),
        "best_epi_per_1000": result.best_epi_per_1000,
        "best_knobs": {
            name: getattr(value, "value", value)
            for name, value in result.best
        },
        "evaluations": result.evaluations,
        "deduped": result.deduped,
        "pruned": result.pruned,
        "resumed": result.resumed,
        "generations": result.generations,
    }


def _cmd_tune(args, settings: ExperimentSettings, workloads) -> int:
    space = _parse_axes(args.param, "--param")
    if not space:
        print("tune needs at least one --param", file=sys.stderr)
        return 2
    _check_workload(args.workload, args.contexts)
    try:
        result = api.tune(
            space,
            profile=args.workload,
            variant=args.variant,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.search_seed,
            settings=settings,
            cache_dir=_cache_dir(args),
            workers=args.workers,
            backend=args.backend,
            trace=args.trace_dir,
            margin=args.margin,
            resume=not args.no_resume,
            contexts=args.contexts,
            scheduler=args.scheduler,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    rows = [
        [
            obs.generation,
            obs.source,
            obs.epi_per_1000,
            " ".join(
                f"{name}={getattr(value, 'value', value)}"
                for name, value in obs.candidate
            ),
        ]
        for obs in result.history
    ]
    print(format_table(
        ["gen", "source", "EPI/1000", "candidate"],
        rows,
        title=f"{args.workload}/{args.variant} tune ({args.strategy})",
    ))
    print(result.summary())
    if result.token:
        print(f"resume state token: {result.token[:16]}...")
    if args.out:
        payload = _best_config_payload(result)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote best configuration to {args.out}")
    return 0


def _cmd_figures(args, settings: ExperimentSettings, workloads) -> int:
    names = [n.strip() for n in args.names.split(",") if n.strip()]
    unknown = set(names) - set(_FIGURES)
    if unknown:
        print(f"unknown figures: {sorted(unknown)}", file=sys.stderr)
        return 2
    cache_dir = _cache_dir(args)
    # Warm phase: fan annotation jobs out across workers; the figure
    # drivers then run serially against a warm (persistent) cache.
    variants = ["pc"]
    if any(name in ("figure7", "figure8") for name in names):
        variants.append("wc")
    runner = EngineRunner(
        settings=settings, cache_dir=cache_dir, workers=args.workers,
    )
    warm_jobs = [
        JobSpec(workload=workload, variant=variant, action="annotate")
        for workload in workloads for variant in variants
    ]
    if cache_dir is not None:
        report = runner.run(warm_jobs)
        print(f"# warm: {report.summary()}", file=sys.stderr)
    bench = api.workbench(settings, cache_dir)
    for name in names:
        print(f"# {name}")
        _render_figure(name, bench, workloads)
    return 0


def _cmd_bench_smoke(args, settings: ExperimentSettings) -> int:
    """A tiny end-to-end parallel sweep: pipeline + cache + pool."""
    smoke_settings = ExperimentSettings(
        warmup=min(settings.warmup, 3000),
        measure=min(settings.measure, 9000),
        seed=settings.seed,
        calibrate=False,
    )
    runner = EngineRunner(
        settings=smoke_settings,
        cache_dir=_cache_dir(args),
        workers=args.workers,
        job_timeout=300.0,
    )
    jobs = [
        JobSpec(
            workload="database",
            core_changes=(
                ("store_prefetch", prefetch), ("store_queue", queue),
            ),
        )
        for prefetch in (StorePrefetchMode.NONE, StorePrefetchMode.AT_RETIRE)
        for queue in (16, 32)
    ]
    report = runner.run(jobs)
    print(report.summary())
    for job in report.jobs:
        line = f"  {job.spec.describe():48s} [{job.status}]"
        if job.ok:
            line += f" EPI/1000={job.result.epi_per_1000:.3f}"
        else:
            line += f" {job.error}"
        print(line)
    if report.failed:
        return 1
    print("smoke ok")
    return 0


def _check_workload(name: str, contexts: int) -> None:
    """Single-context commands need a plain profile name; SMT commands
    defer to the mix resolver (which validates and lists the mixes)."""
    if contexts == 1 and name not in ALL_WORKLOADS:
        raise SystemExit(
            f"unknown workload {name!r}; valid workloads: "
            f"{', '.join(ALL_WORKLOADS)} (mixes need --contexts > 1)"
        )


def _cmd_run(args, settings: ExperimentSettings) -> int:
    _check_workload(args.workload, args.contexts)
    variant = (
        ("wc" if args.consistency == "wc" else "pc")
        + ("_sle" if args.sle else "")
    )
    core_changes = dict(
        store_prefetch=_PREFETCH[args.prefetch],
        consistency=(
            ConsistencyModel.WC if args.consistency == "wc"
            else ConsistencyModel.PC
        ),
        scout=_SCOUT[args.scout],
        store_buffer=args.store_buffer,
        store_queue=args.store_queue,
        perfect_stores=args.perfect_stores,
    )
    if args.contexts > 1:
        if args.shards > 1 or args.checkpoint_every > 0 or args.trace:
            print(
                "--contexts > 1 is not supported with --shards/"
                "--checkpoint-every/--trace",
                file=sys.stderr,
            )
            return 2
        try:
            result = api.run(
                args.workload,
                settings=settings,
                cache_dir=_cache_dir(args),
                variant=variant,
                contexts=args.contexts,
                scheduler=args.scheduler,
                **core_changes,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(result.summary())
        return 0
    if args.scheduler:
        print("--scheduler only applies with --contexts > 1",
              file=sys.stderr)
        return 2
    if args.shards > 1 or args.checkpoint_every > 0:
        if args.trace is not None:
            print("--trace is not supported with --shards/--checkpoint-every",
                  file=sys.stderr)
            return 2
        runner = EngineRunner(
            settings=settings, cache_dir=_cache_dir(args),
            workers=args.workers,
        )
        spec = JobSpec(
            workload=args.workload, variant=variant,
            core_changes=tuple(sorted(core_changes.items())),
            backend=args.backend or "",
        )
        report = runner.run_sharded(
            spec, args.shards, checkpoint_every=args.checkpoint_every,
        )
        print(f"# plan: {report.plan.describe()}", file=sys.stderr)
        for job in report.jobs:
            line = f"  {job.spec.describe():52s} [{job.status}]"
            if job.resumed_pos >= 0:
                line += f" resumed@{job.resumed_pos}"
            print(line)
            if job.checkpoint_token:
                print(f"    resume token: {job.checkpoint_token}")
        print(f"# {report.summary()}", file=sys.stderr)
        if not report.ok:
            return 1
        print(report.merged.summary())
        return 0
    result = api.run(
        args.workload,
        settings=settings,
        cache_dir=_cache_dir(args),
        trace=args.trace,
        variant=variant,
        backend=args.backend,
        **core_changes,
    )
    print(result.summary())
    return 0


def _cmd_estimate(args) -> int:
    knobs = {}
    for spec in args.knob:
        name, _, raw = spec.partition("=")
        name = name.strip()
        if not name or not raw:
            raise SystemExit(
                f"bad --knob {spec!r}: expected NAME=VALUE"
            )
        if name in knobs:
            raise SystemExit(
                f"duplicate --knob name {name!r}"
            )
        try:
            knobs[name] = coerce_axis_value(name, raw.strip())
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        guess = api.estimate({
            "workload": args.workload,
            "variant": args.variant,
            "contexts": args.contexts,
            "core_changes": knobs,
        })
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        from .engine import serialize

        print(json.dumps(
            serialize.to_jsonable(guess), indent=2, sort_keys=True,
        ))
    else:
        print(guess.summary())
    return 0


def _cmd_resume(args) -> int:
    from .errors import ReproError

    try:
        job = api.resume(
            args.token, cache_dir=_cache_dir(args), workers=args.workers,
        )
    except (KeyError, ValueError, ReproError) as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 1
    line = f"{job.spec.describe()} [{job.status}]"
    if job.resumed_pos >= 0:
        line += f" resumed@{job.resumed_pos}"
    print(line)
    if not job.ok:
        print(f"  error: {job.error}", file=sys.stderr)
        return 1
    print(job.result.summary())
    return 0


def _cmd_serve(args, settings: ExperimentSettings) -> int:
    from .obs import ObsOptions
    from .service import serve

    obs = (
        ObsOptions.for_trace(
            args.trace_dir, trace_max_bytes=args.trace_max_bytes,
        )
        if args.trace_dir is not None else None
    )
    if args.fleet:
        from .fleet import serve_fleet

        return serve_fleet(
            host=args.host,
            port=args.port,
            settings=settings,
            cache_dir=_cache_dir(args),
            queue_capacity=args.queue_capacity,
            lease_ttl=args.lease_ttl,
            max_inflight=args.max_inflight,
            lease_batch=args.lease_batch,
            drain_timeout=args.drain_timeout,
            log_level=args.log_level,
            log_format=args.log_format,
            obs=obs,
            default_backend=args.default_backend,
        )
    return serve(
        host=args.host,
        port=args.port,
        settings=settings,
        cache_dir=_cache_dir(args),
        workers=args.workers,
        job_timeout=args.job_timeout,
        queue_capacity=args.queue_capacity,
        drain_timeout=args.drain_timeout,
        log_level=args.log_level,
        log_format=args.log_format,
        obs=obs,
    )


def _cmd_worker(args) -> int:
    from .obs import ObsOptions
    from .fleet import run_worker

    obs = (
        ObsOptions.for_trace(
            args.trace_dir, trace_max_bytes=args.trace_max_bytes,
        )
        if args.trace_dir is not None else None
    )
    cache_dir = _cache_dir(args)
    return run_worker(
        args.join,
        name=args.name,
        cache_dir=None if cache_dir == "auto" else cache_dir,
        runner_workers=args.runner_workers,
        lease_batch=args.lease_batch,
        log_level=args.log_level,
        log_format=args.log_format,
        obs=obs,
    )


def _cmd_fleet_top(args) -> int:
    """Live console view over ``/metrics?format=json`` + fleet status."""
    import urllib.error
    import urllib.request

    def fetch(path: str) -> Dict[str, Any]:
        with urllib.request.urlopen(
            f"{args.url.rstrip('/')}{path}", timeout=10.0,
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    frames = 0
    try:
        while True:
            try:
                snapshot = fetch("/metrics?format=json")
                status = fetch("/v1/fleet/status")
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                print(f"fleet top: cannot reach {args.url}: {exc}",
                      file=sys.stderr)
                return 1
            frames += 1
            if frames > 1:
                print("\x1b[2J\x1b[H", end="")
            print(_render_fleet_top(args.url, snapshot, status))
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _render_fleet_top(
    url: str, snapshot: Dict[str, Any], status: Dict[str, Any],
) -> str:
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    labeled = snapshot.get("labeled", {})
    latency = snapshot.get("latency", {})

    def series(family: str) -> Dict[str, float]:
        return {
            entry["labels"].get("worker", "?"): entry["value"]
            for entry in labeled.get(family, [])
        }

    inflight = series("fleet_worker_inflight")
    lease_age = series("fleet_worker_lease_age_oldest")
    tasks_done = series("fleet_worker_tasks_done_total")
    epochs = series("fleet_worker_sim_epochs_total")
    insts = series("fleet_worker_sim_instructions_total")
    names = sorted(
        set(inflight) | set(tasks_done) | set(epochs) | set(lease_age)
    )
    lines = [
        f"fleet top — {url}",
        (
            f"workers {gauges.get('fleet_workers', 0):.0f}"
            f" (evicted {gauges.get('fleet_workers_evicted_total', 0):.0f})"
            f"  queue depth {gauges.get('queue_depth', 0):.0f}"
            f"  tasks {status.get('tasks')}"
            f"  submitted {counters.get('jobs_submitted_total', 0)}"
            f"  shed {counters.get('jobs_shed_total', 0)}"
        ),
        (
            f"{'worker':<18}{'inflight':>9}{'lease age':>11}"
            f"{'tasks done':>12}{'epochs':>12}{'insts':>14}"
        ),
    ]
    for name in names:
        lines.append(
            f"{name:<18}{inflight.get(name, 0):>9.0f}"
            f"{lease_age.get(name, 0.0):>10.1f}s"
            f"{tasks_done.get(name, 0):>12.0f}"
            f"{epochs.get(name, 0):>12.0f}"
            f"{insts.get(name, 0):>14.0f}"
        )
    if not names:
        lines.append("  (no federated worker series yet)")
    phases = []
    for name, label in (
        ("job_queue_wait", "queue"),
        ("task_lease_wait", "lease"),
        ("task_exec", "exec"),
        ("job_assemble", "merge"),
        ("job_latency", "job e2e"),
    ):
        summary = latency.get(name)
        if summary and summary.get("count"):
            phases.append(
                f"{label} p50={summary['p50']:.3f}s p99={summary['p99']:.3f}s"
            )
    if phases:
        lines.append("latency: " + "  |  ".join(phases))
    return "\n".join(lines)


def _cmd_fleet(args) -> int:
    from .service import ServiceClient, ServiceError

    if args.fleet_command == "top":
        return _cmd_fleet_top(args)
    client = ServiceClient(args.url)
    try:
        if args.fleet_command == "drain":
            client.fleet_drain(args.worker)
            print("drain requested" + (
                f" for worker {args.worker}" if args.worker else
                " for the whole fleet"
            ))
            return 0
        status = client.fleet_status()
    except ServiceError as exc:
        print(f"fleet query failed: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2))
        return 0
    workers = status.get("workers", [])
    print(f"{len(workers)} worker(s); queue depth "
          f"{status.get('queue_depth', 0)}; tasks {status.get('tasks')}")
    for worker in workers:
        flags = " draining" if worker.get("draining") else ""
        print(
            f"  {worker['id']}  {worker['name']:<16} "
            f"pid={worker.get('pid', 0):<7} "
            f"done={worker.get('tasks_done', 0):<5} "
            f"failed={worker.get('tasks_failed', 0):<4} "
            f"hb={worker.get('heartbeat_age_seconds', 0.0):.1f}s ago"
            f"{flags}"
        )
    outstanding = status.get("outstanding_cost_units", 0)
    if outstanding:
        print(f"outstanding predicted cost: {outstanding} units "
              f"(retry-after hint {status.get('retry_after_hint')}s)")
    return 0


def _cmd_trace(args) -> int:
    from .obs import read_events, render_timeline

    try:
        print(render_timeline(read_events(args.path), limit=args.limit),
              end="")
    except (OSError, ValueError) as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args) -> int:
    from .obs import load_events, read_events, render_report
    from .obs.report import summarize

    if args.obs_command == "report":
        try:
            if getattr(args, "format", "text") == "json":
                digest = summarize(load_events(args.path))
                print(json.dumps(digest, indent=2, sort_keys=True))
            else:
                print(render_report(read_events(args.path)), end="")
        except (OSError, ValueError) as exc:
            print(f"obs report failed: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.obs_command == "critical-path":
        return _cmd_obs_critical_path(args)
    print(f"unknown obs command {args.obs_command!r}", file=sys.stderr)
    return 2


def _cmd_obs_critical_path(args) -> int:
    from .obs import (
        fleet_job_ids,
        job_timeline,
        load_events,
        render_timeline_report,
    )

    try:
        events = load_events(args.trace_path)
    except (OSError, ValueError) as exc:
        print(f"obs critical-path failed: {exc}", file=sys.stderr)
        return 1
    if args.job_id == "all":
        job_ids = fleet_job_ids(events)
        if not job_ids:
            print("no fleet jobs found in trace", file=sys.stderr)
            return 1
    else:
        job_ids = [args.job_id]
    timelines = []
    for job_id in job_ids:
        timeline = job_timeline(events, job_id)
        if timeline is None:
            print(f"no trace for job {job_id!r}", file=sys.stderr)
            return 1
        timelines.append(timeline)
    if args.json:
        payload = [timeline.to_dict() for timeline in timelines]
        print(json.dumps(
            payload[0] if args.job_id != "all" else payload,
            indent=2, sort_keys=True,
        ))
    else:
        for index, timeline in enumerate(timelines):
            if index:
                print()
            print(render_timeline_report(timeline, events), end="")
    return 0


def _print_job_status(status: Dict[str, Any]) -> None:
    from .service import ServiceClient

    print(f"job {status['id']}: {status['state']} "
          f"({status['description']})")
    if status["state"] == "failed":
        print(f"  error: {status.get('error', '')}")
    result = status.get("result") or {}
    if status["state"] == "done" and "report" in result:
        report = ServiceClient.decode_report(status)
        print(f"  {report.summary()}")
        for row in result.get("records", []):
            print(
                f"  {row['workload']:10s} {row['point']:42s} "
                f"EPI/1000={row['epi_per_1000']:.3f}"
            )
    elif status["state"] == "done" and result.get("kind") == "figure":
        print(json.dumps(result["data"], indent=2))


def _cmd_submit(args) -> int:
    from .service import ServiceError

    axes = _parse_axes(args.axis, "--axis")
    if not axes:
        print("submit needs at least one --axis", file=sys.stderr)
        return 2
    client = api.connect(args.url)
    try:
        receipt = client.submit_sweep(
            args.workload, variant=args.variant, priority=args.priority,
            backend=args.backend,
            **{
                name: [getattr(v, "value", v) for v in values]
                for name, values in axes.items()
            },
        )
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    dedup = " (deduplicated against an in-flight job)" \
        if receipt["deduped"] else ""
    print(f"submitted {receipt['id']}{dedup}")
    if args.no_wait:
        return 0
    status = client.wait(receipt["id"], timeout=args.poll_timeout)
    _print_job_status(status)
    return 0 if status["state"] == "done" else 1


def _cmd_status(args) -> int:
    from .service import ServiceError

    try:
        status = api.connect(args.url).status(args.job_id)
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    _print_job_status(status)
    return 0


def _cmd_cache(args) -> int:
    from .engine.cache import ArtifactCache, resolve_cache_dir

    directory = resolve_cache_dir(_cache_dir(args))
    if directory is None:
        print("persistent cache disabled (--cache-dir none)",
              file=sys.stderr)
        return 2
    cache = ArtifactCache(directory)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        print(f"cache directory: {directory}")
        print(f"{stats.entries} entries, {stats.total_bytes} bytes")
        for kind, (entries, size) in sorted(stats.by_kind.items()):
            print(f"  {kind:12s} {entries:6d} entries {size:12d} bytes")
        return 0
    max_bytes = _parse_size(args.max_bytes) \
        if args.max_bytes is not None else None
    older_than = _parse_age(args.older_than) \
        if args.older_than is not None else None
    if max_bytes is None and older_than is None:
        print("prune needs --max-bytes and/or --older-than",
              file=sys.stderr)
        return 2
    result = cache.prune(max_bytes=max_bytes, older_than=older_than)
    print(
        f"pruned {result.removed_entries} entries "
        f"({result.removed_bytes} bytes); "
        f"{result.remaining_entries} entries "
        f"({result.remaining_bytes} bytes) remain"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    settings = ExperimentSettings(
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
        calibrate=not args.no_calibrate,
    )
    workloads = tuple(
        name.strip() for name in args.workloads.split(",") if name.strip()
    )
    unknown = set(workloads) - set(ALL_WORKLOADS)
    if unknown:
        print(f"unknown workloads: {sorted(unknown)}", file=sys.stderr)
        return 2

    if args.command == "run":
        return _cmd_run(args, settings)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "serve":
        return _cmd_serve(args, settings)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "sweep":
        return _cmd_sweep(args, settings, workloads)
    if args.command == "tune":
        return _cmd_tune(args, settings, workloads)
    if args.command == "figures":
        return _cmd_figures(args, settings, workloads)
    if args.command == "bench":
        if args.perf:
            from .bench.perf import main as perf_main

            return perf_main(
                reps=args.reps,
                warmup_reps=args.warmup_reps,
                out=args.out,
                baseline=args.baseline,
                max_regression=args.max_regression,
                backend=args.backend,
            )
        if not args.smoke:
            print("bench requires --smoke or --perf", file=sys.stderr)
            return 2
        return _cmd_bench_smoke(args, settings)

    bench = api.workbench(settings, _cache_dir(args))
    if args.command == "table1":
        print(format_table1(table1(bench, workloads)))
    elif args.command == "table2":
        print(format_table2(table2(bench, workloads)))
    elif args.command == "table3":
        print(format_table3(table3(bench, workloads)))
    elif args.command == "figure3":
        _render_figure("figure3", bench, workloads, sle=args.sle)
    elif args.command in _FIGURES:
        _render_figure(args.command, bench, workloads)
    elif args.command == "report":
        from .harness.report import ALL_SECTIONS, generate_report
        sections = args.sections or list(ALL_SECTIONS)
        sys.stdout.write(generate_report(bench, sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
